//! The in-memory embedding store and its `SREMB1` on-disk image.
//!
//! A store is the serving-side half of the model: the five per-period node
//! embedding matrices (`h` for store-region nodes, `q` for type nodes,
//! steps 1–3 of the paper's Fig. 9 evaluated once, offline) plus the
//! scoring-tail weights (time semantics-level attention and the prediction
//! layer, steps 4–5). Scoring a query replays exactly the tape ops of
//! [`siterec_core::O2SiteRec::predict`]'s tail over these constants, which
//! is what makes online scores raw-`f32`-bit-identical to offline inference.
//!
//! # `SREMB1` image format
//!
//! The store serializes to a versioned, CRC32-checksummed binary image in
//! the house checkpoint style (named sections, every payload checksummed),
//! written atomically via [`siterec_obs::atomic_write`]:
//!
//! ```text
//! magic    8  b"SREMB1\0\0"
//! version  4  u32 le = 1
//! sections 4  u32 le count
//! then per section:
//!   name     str   ("meta" | "map" | "emb" | "tail")
//!   len      u64   payload byte length
//!   crc32    u32   CRC32 (IEEE) over the payload bytes
//!   payload  len bytes
//! ```
//!
//! All floats are raw IEEE-754 bits, so a write → read round-trip scores
//! bit-identically to the in-memory store it came from.

use siterec_core::{gather_period_pairs, score_tail, ServingExport, TailSpec, TailVars};
use siterec_geo::Period;
use siterec_tensor::checkpoint::{crc32, ByteReader, ByteWriter};
use siterec_tensor::{Graph, Tensor};
use std::fmt;
use std::io;
use std::path::Path;

/// Image file magic: the first eight bytes of every `SREMB1` image.
pub const IMAGE_MAGIC: &[u8; 8] = b"SREMB1\0\0";

/// Current image format version.
pub const IMAGE_VERSION: u32 = 1;

/// One score query: a candidate region, a store type, and an optional
/// time-period restriction (`None` scores the paper's all-period
/// aggregation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Query {
    /// Candidate region index.
    pub region: usize,
    /// Store type index.
    pub ty: usize,
    /// Restrict scoring to one period; `None` attends over all five.
    pub period: Option<Period>,
}

impl Query {
    /// Dense period-selector index: `0..5` for a single period, `5` for the
    /// all-period aggregation. Queries with equal selectors share one scoring
    /// graph (their tails have the same shape).
    pub fn selector(&self) -> usize {
        self.period.map_or(Period::COUNT, |p| p.index())
    }
}

/// A failure loading or decoding an embedding-store image.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(io::Error),
    /// The image fails magic/version/CRC/structure checks.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "embedding image i/o error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt embedding image: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// The compact in-memory embedding store scored against by the server.
///
/// Built either from a live model ([`ServingExport`]) or from an on-disk
/// [`SREMB1` image](self); both routes hold identical bits and therefore
/// produce identical scores.
#[derive(Debug, Clone)]
pub struct EmbeddingStore {
    export: ServingExport,
}

impl EmbeddingStore {
    /// Wrap a model's serving export.
    pub fn new(export: ServingExport) -> EmbeddingStore {
        assert_eq!(export.h.len(), Period::COUNT, "expected 5 h matrices");
        assert_eq!(export.q.len(), Period::COUNT, "expected 5 q matrices");
        EmbeddingStore { export }
    }

    /// Model name recorded in the export (`"O2-SiteRec"`).
    pub fn model(&self) -> &str {
        &self.export.model
    }

    /// Training seed behind the embeddings.
    pub fn seed(&self) -> u64 {
        self.export.seed
    }

    /// Committed training epochs behind the embeddings (the staleness
    /// handle: a reload is worthwhile when the checkpoint has moved past
    /// this).
    pub fn trained_epochs(&self) -> usize {
        self.export.trained_epochs
    }

    /// Number of candidate regions (valid `region` query range).
    pub fn n_regions(&self) -> usize {
        self.export.s_of_region.len()
    }

    /// Number of store types (valid `type` query range).
    pub fn n_types(&self) -> usize {
        self.export.n_types
    }

    /// Bytes held by the embedding and tail tensors (capacity-planning
    /// figure surfaced in `/healthz`).
    pub fn tensor_bytes(&self) -> usize {
        let t = |t: &Tensor| t.len() * std::mem::size_of::<f32>();
        self.export.h.iter().map(&t).sum::<usize>()
            + self.export.q.iter().map(&t).sum::<usize>()
            + t(&self.export.wk)
            + t(&self.export.wq)
            + t(&self.export.pred_w)
            + t(&self.export.pred_b)
    }

    fn tail_spec(&self) -> TailSpec {
        TailSpec {
            d2: self.export.d2,
            time_heads: self.export.time_heads,
            mean_pool: self.export.mean_pool,
        }
    }

    /// Score a batch of queries, in order. Regions that host no stores score
    /// 0, exactly as offline [`siterec_core::O2SiteRec::predict`].
    ///
    /// Queries are grouped by period selector; every group replays the
    /// offline scoring-tail ops ([`gather_period_pairs`] + [`score_tail`])
    /// over the stored constants. All tail ops are row-independent with a
    /// fixed accumulation order, so the returned bits do not depend on batch
    /// composition, batch order, or the kernel thread count.
    pub fn score_batch(&self, queries: &[Query]) -> Vec<f32> {
        let mut out = vec![0.0f32; queries.len()];
        // selector -> (output slot, store node, type) per grouped query.
        let mut groups: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); Period::COUNT + 1];
        for (i, q) in queries.iter().enumerate() {
            let node = self.export.s_of_region.get(q.region).copied().flatten();
            if let Some(s) = node {
                assert!(q.ty < self.export.n_types, "type {} out of range", q.ty);
                groups[q.selector()].push((i, s, q.ty));
            }
        }
        for (sel, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let periods: Vec<usize> = if sel == Period::COUNT {
                (0..Period::COUNT).collect()
            } else {
                vec![sel]
            };
            let ss: Vec<usize> = group.iter().map(|&(_, s, _)| s).collect();
            let aa: Vec<usize> = group.iter().map(|&(_, _, a)| a).collect();
            let mut g = Graph::new();
            g.training = false;
            let hs: Vec<_> = periods
                .iter()
                .map(|&p| g.constant(self.export.h[p].clone()))
                .collect();
            let qs: Vec<_> = periods
                .iter()
                .map(|&p| g.constant(self.export.q[p].clone()))
                .collect();
            let w = TailVars {
                wk: g.constant(self.export.wk.clone()),
                wq: g.constant(self.export.wq.clone()),
                pred_w: g.constant(self.export.pred_w.clone()),
                pred_b: g.constant(self.export.pred_b.clone()),
            };
            let per_period = gather_period_pairs(&mut g, &hs, &qs, &ss, &aa);
            let pred = score_tail(&mut g, &self.tail_spec(), &w, &per_period);
            let values = g.value(pred);
            for (j, &(slot, _, _)) in group.iter().enumerate() {
                out[slot] = values.get(j, 0);
            }
        }
        out
    }

    /// Score one query (a one-element [`Self::score_batch`]; same bits).
    pub fn score(&self, query: Query) -> f32 {
        self.score_batch(std::slice::from_ref(&query))[0]
    }

    /// Top-`k` candidate regions for a store type: every region that hosts
    /// stores is scored (optionally period-restricted) and ranked descending
    /// by score, ties broken by ascending region index so the ranking is
    /// total and reproducible. Returns `(region, score)` pairs.
    pub fn top_k(&self, ty: usize, period: Option<Period>, k: usize) -> Vec<(usize, f32)> {
        let queries: Vec<Query> = (0..self.n_regions())
            .filter(|&r| self.export.s_of_region[r].is_some())
            .map(|region| Query { region, ty, period })
            .collect();
        let scores = self.score_batch(&queries);
        let mut ranked: Vec<(usize, f32)> = queries.iter().map(|q| q.region).zip(scores).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Encode the store as `SREMB1` image bytes.
    pub fn encode(&self) -> Vec<u8> {
        let e = &self.export;
        let mut meta = ByteWriter::new();
        meta.str(&e.model);
        meta.u64(e.seed);
        meta.usize(e.trained_epochs);
        meta.usize(e.d2);
        meta.usize(e.time_heads);
        meta.u8(e.mean_pool as u8);
        meta.usize(e.n_types);

        let mut map = ByteWriter::new();
        map.usize(e.s_of_region.len());
        for &s in &e.s_of_region {
            map.opt_usize(s);
        }

        let mut emb = ByteWriter::new();
        for t in e.h.iter().chain(e.q.iter()) {
            emb.tensor(t);
        }

        let mut tail = ByteWriter::new();
        tail.tensor(&e.wk);
        tail.tensor(&e.wq);
        tail.tensor(&e.pred_w);
        tail.tensor(&e.pred_b);

        let sections: [(&str, &[u8]); 4] = [
            ("meta", meta.as_bytes()),
            ("map", map.as_bytes()),
            ("emb", emb.as_bytes()),
            ("tail", tail.as_bytes()),
        ];
        let mut out = ByteWriter::new();
        for &b in IMAGE_MAGIC {
            out.u8(b);
        }
        out.u32(IMAGE_VERSION);
        out.u32(sections.len() as u32);
        for (name, payload) in sections {
            out.str(name);
            out.u64(payload.len() as u64);
            out.u32(crc32(payload));
            for &b in payload {
                out.u8(b);
            }
        }
        out.into_bytes()
    }

    /// Decode an image produced by [`Self::encode`], verifying magic,
    /// version, section structure and every per-section CRC32.
    pub fn decode(bytes: &[u8]) -> Result<EmbeddingStore, StoreError> {
        let corrupt = |m: String| StoreError::Corrupt(m);
        let wire = |e: siterec_tensor::checkpoint::ByteDecodeError| StoreError::Corrupt(e.0);
        let mut r = ByteReader::new(bytes);
        if r.take(8).map_err(wire)? != IMAGE_MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let version = r.u32().map_err(wire)?;
        if version != IMAGE_VERSION {
            return Err(corrupt(format!(
                "unsupported version {version} (expected {IMAGE_VERSION})"
            )));
        }
        let n_sections = r.u32().map_err(wire)?;
        let (mut meta, mut map, mut emb, mut tail) = (None, None, None, None);
        for _ in 0..n_sections {
            let name = r.str().map_err(wire)?;
            let len = r.usize().map_err(wire)?;
            let want = r.u32().map_err(wire)?;
            let payload = r.take(len).map_err(wire)?;
            if crc32(payload) != want {
                return Err(corrupt(format!("section {name:?}: CRC mismatch")));
            }
            match name.as_str() {
                "meta" => meta = Some(payload),
                "map" => map = Some(payload),
                "emb" => emb = Some(payload),
                "tail" => tail = Some(payload),
                // Forward compatibility: unknown sections are checksummed
                // and skipped.
                _ => {}
            }
        }
        r.finish().map_err(wire)?;
        let missing = |what: &str| StoreError::Corrupt(format!("missing section {what:?}"));

        let mut mr = ByteReader::new(meta.ok_or_else(|| missing("meta"))?);
        let model = mr.str().map_err(wire)?;
        let seed = mr.u64().map_err(wire)?;
        let trained_epochs = mr.usize().map_err(wire)?;
        let d2 = mr.usize().map_err(wire)?;
        let time_heads = mr.usize().map_err(wire)?;
        let mean_pool = mr.u8().map_err(wire)? != 0;
        let n_types = mr.usize().map_err(wire)?;
        mr.finish().map_err(wire)?;

        let mut pr = ByteReader::new(map.ok_or_else(|| missing("map"))?);
        let n_regions = pr.usize().map_err(wire)?;
        let mut s_of_region = Vec::with_capacity(n_regions.min(1 << 24));
        for _ in 0..n_regions {
            s_of_region.push(pr.opt_usize().map_err(wire)?);
        }
        pr.finish().map_err(wire)?;

        let mut er = ByteReader::new(emb.ok_or_else(|| missing("emb"))?);
        let mut h = Vec::with_capacity(Period::COUNT);
        let mut q = Vec::with_capacity(Period::COUNT);
        for _ in 0..Period::COUNT {
            h.push(er.tensor().map_err(wire)?);
        }
        for _ in 0..Period::COUNT {
            q.push(er.tensor().map_err(wire)?);
        }
        er.finish().map_err(wire)?;

        let mut tr = ByteReader::new(tail.ok_or_else(|| missing("tail"))?);
        let wk = tr.tensor().map_err(wire)?;
        let wq = tr.tensor().map_err(wire)?;
        let pred_w = tr.tensor().map_err(wire)?;
        let pred_b = tr.tensor().map_err(wire)?;
        tr.finish().map_err(wire)?;

        Ok(EmbeddingStore::new(ServingExport {
            model,
            seed,
            trained_epochs,
            d2,
            time_heads,
            mean_pool,
            n_types,
            s_of_region,
            h,
            q,
            wk,
            wq,
            pred_w,
            pred_b,
        }))
    }

    /// Write the image to `path` atomically (temp file + fsync + rename via
    /// [`siterec_obs::atomic_write_fp`]): a crash mid-write never leaves a
    /// torn image. The write sits behind the `emb.image.save` failpoint
    /// seam with bounded deterministic retry, so transient I/O errors heal
    /// in place. Returns the byte count written.
    pub fn write_image(&self, path: &Path) -> io::Result<usize> {
        let bytes = self.encode();
        siterec_obs::retry_io("write_image", siterec_obs::RetryCfg::from_env(), || {
            siterec_obs::atomic_write_fp(path, &bytes, "emb.image.save")
        })?;
        Ok(bytes.len())
    }

    /// Read and decode an image written by [`Self::write_image`]. The read
    /// passes the `emb.image.load` failpoint seam; injected short/corrupt
    /// damage is caught by the per-section CRC checks in `decode`.
    pub fn read_image(path: &Path) -> Result<EmbeddingStore, StoreError> {
        let mut bytes = std::fs::read(path)?;
        siterec_obs::read_fault("emb.image.load", &mut bytes)?;
        EmbeddingStore::decode(&bytes)
    }
}
