//! `siterec-serve`: train, serve, supervise, and query O²-SiteRec site
//! recommendations.
//!
//! Four subcommands (see SERVING.md for the operator guide):
//!
//! * `train  --recipe tiny:7 --ckpt DIR [--epochs N]` — train the recipe's
//!   model with durable checkpoints (resumes if the directory already holds
//!   one).
//! * `run    --recipe tiny:7 --ckpt DIR [--addr A] [--workers N] [--queue N]
//!   [--batch N] [--cache N] [--image PATH] [--max-requests N]` — rebuild
//!   the model from the recipe, adopt the newest checkpoint, export the
//!   embedding store (optionally writing its `SREMB1` image), and serve.
//!   Prints `listening on <addr>` once ready. On Unix, SIGTERM triggers the
//!   same graceful drain as `POST /admin/drain`.
//! * `supervise --recipe tiny:7 --ckpt DIR [--replicas N] [--seed S]
//!   [--restart-budget N] [--journal-dir DIR] ...` — run N replica servers
//!   as supervised children: health-checked, restarted with deterministic
//!   seeded backoff, rolling-restarted via `POST /admin/roll`. Prints the
//!   supervisor's own `listening on <addr>`; replica addresses live in its
//!   `/healthz` JSON.
//! * `query  --addr HOST:PORT [--retry N] [--timeout-ms T] <action>` — a
//!   tiny HTTP client for scripts and CI: `--region R --type T [--period
//!   L]` scores one pair, `--topk K --type T` ranks regions, `--healthz` /
//!   `--metrics` / `--reload` / `--drain` / `--quit` hit the admin surface.
//!   Prints the response body.
//!
//! When `SITEREC_JOURNAL` is set, `run` writes the JSONL run-journal
//! (including `serve_request` / `serve_reload` / `serve_drain` records) on
//! graceful exit (`/admin/quit`, `/admin/drain`, SIGTERM, or
//! `--max-requests`), and `supervise` writes its `supervisor_event`
//! history the same way.

use siterec_obs as obs;
use siterec_serve::server::{start, ServeConfig};
use siterec_serve::store::EmbeddingStore;
use siterec_serve::{supervise, Recipe, SuperviseConfig};
use siterec_tensor::checkpoint::CheckpointPolicy;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprintln!("usage: siterec-serve <train|run|supervise|query> [flags]  (see SERVING.md)");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd {
        "train" => cmd_train(rest),
        "run" => cmd_run(rest),
        "supervise" => cmd_supervise(rest),
        "query" => cmd_query(rest),
        other => Err(format!(
            "unknown subcommand {other:?} (train | run | supervise | query)"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("siterec-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Pull the value after a `--flag`, removing both from `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            if i + 1 >= args.len() {
                return Err(format!("missing value for {flag}"));
            }
            let v = args.remove(i + 1);
            args.remove(i);
            Ok(Some(v))
        }
        None => Ok(None),
    }
}

fn take_parsed<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, String> {
    match take_flag(args, flag)? {
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("bad value for {flag}: {v:?}")),
        None => Ok(None),
    }
}

fn reject_leftovers(args: &[String]) -> Result<(), String> {
    match args.first() {
        Some(a) => Err(format!("unknown flag {a:?}")),
        None => Ok(()),
    }
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let recipe: Recipe = take_flag(&mut args, "--recipe")?
        .ok_or("train needs --recipe preset:seed")?
        .parse()?;
    let ckpt: PathBuf = take_flag(&mut args, "--ckpt")?
        .ok_or("train needs --ckpt DIR")?
        .into();
    let epochs: usize = take_parsed(&mut args, "--epochs")?.unwrap_or(6);
    reject_leftovers(&args)?;

    let mut model = recipe.build_model(epochs);
    let policy = CheckpointPolicy::new(&ckpt);
    model
        .try_train_resumable(&policy)
        .map_err(|e| format!("training failed: {e:?}"))?;
    let last = model.history().last().expect("trained at least one epoch");
    println!(
        "trained {recipe} to epoch {} (loss {:.6}) -> {}",
        last.epoch,
        last.loss,
        ckpt.display()
    );
    if let Some(path) = obs::journal_path() {
        obs::write_journal(path).map_err(|e| format!("journal write failed: {e}"))?;
    }
    Ok(())
}

/// Build the embedding store by rebuilding the recipe model and adopting the
/// newest checkpoint in `ckpt` (shared by startup and `/admin/reload`).
fn build_store(recipe: Recipe, ckpt: &std::path::Path) -> Result<EmbeddingStore, String> {
    let mut model = recipe.build_model(1);
    match model.restore_latest(ckpt) {
        Ok(Some(_epochs)) => Ok(EmbeddingStore::new(model.export_serving())),
        Ok(None) => Err(format!(
            "no checkpoint for recipe {recipe} in {} (run `siterec-serve train` first)",
            ckpt.display()
        )),
        Err(e) => Err(format!("checkpoint dir {} unreadable: {e}", ckpt.display())),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let recipe: Recipe = take_flag(&mut args, "--recipe")?
        .ok_or("run needs --recipe preset:seed")?
        .parse()?;
    let ckpt: PathBuf = take_flag(&mut args, "--ckpt")?
        .ok_or("run needs --ckpt DIR")?
        .into();
    let mut cfg = ServeConfig::from_env();
    if let Some(addr) = take_flag(&mut args, "--addr")? {
        cfg.addr = addr;
    }
    if let Some(v) = take_parsed::<usize>(&mut args, "--workers")? {
        cfg.workers = v.max(1);
    }
    if let Some(v) = take_parsed::<usize>(&mut args, "--queue")? {
        cfg.queue_cap = v.max(1);
    }
    if let Some(v) = take_parsed::<usize>(&mut args, "--batch")? {
        cfg.max_batch = v.max(1);
    }
    if let Some(v) = take_parsed::<usize>(&mut args, "--cache")? {
        cfg.cache_cap = v.max(1);
    }
    cfg.max_requests = take_parsed::<u64>(&mut args, "--max-requests")?;
    let image: Option<PathBuf> = take_flag(&mut args, "--image")?.map(PathBuf::from);
    reject_leftovers(&args)?;

    obs::record!("run_start", name = "siterec-serve");
    let t_run = Instant::now();
    let t0 = Instant::now();
    let store = build_store(recipe, &ckpt)?;
    obs::record!(
        "serve_reload",
        source = "startup",
        epoch = store.trained_epochs(),
        dur_ns = t0.elapsed().as_nanos() as u64,
    );
    if let Some(path) = &image {
        let bytes = store
            .write_image(path)
            .map_err(|e| format!("image write to {} failed: {e}", path.display()))?;
        println!("embedding image: {bytes} bytes -> {}", path.display());
    }
    println!(
        "store: {} regions x {} types, {} epochs, {} tensor bytes",
        store.n_regions(),
        store.n_types(),
        store.trained_epochs(),
        store.tensor_bytes()
    );

    let reloader: siterec_serve::Reloader = Box::new(move || build_store(recipe, &ckpt));
    let handle = start(store, cfg, Some(reloader)).map_err(|e| format!("could not bind: {e}"))?;
    // SIGTERM gets the same graceful drain as `POST /admin/drain`: the
    // handler only flips an atomic (async-signal-safe); a watcher thread
    // notices and drives the drain, so the journal is flushed and the
    // process exits 0.
    #[cfg(unix)]
    {
        sigterm::install();
        let controller = handle.controller();
        std::thread::Builder::new()
            .name("sigterm-watcher".to_string())
            .spawn(move || loop {
                if sigterm::received() {
                    controller.drain();
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            })
            .map_err(|e| format!("sigterm watcher: {e}"))?;
    }
    // The orchestrators (chaos_serve, ci.sh) parse this exact line.
    println!("listening on {}", handle.addr());
    std::io::stdout().flush().ok();
    handle.join();

    obs::record!(
        "run_end",
        name = "siterec-serve",
        dur_ns = t_run.elapsed().as_nanos() as u64
    );
    if let Some(path) = obs::journal_path() {
        let lines = obs::write_journal(path).map_err(|e| format!("journal write failed: {e}"))?;
        eprintln!("[siterec] journal: {lines} lines -> {}", path.display());
    }
    Ok(())
}

/// Minimal SIGTERM plumbing without a signal crate: libc's `signal` is
/// declared directly, and the handler body is just an atomic store — the
/// only async-signal-safe thing it could do. All real work happens on the
/// watcher thread that polls [`received`].
#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    static RECEIVED: AtomicBool = AtomicBool::new(false);

    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigterm(_sig: i32) {
        RECEIVED.store(true, Ordering::SeqCst);
    }

    /// Install the SIGTERM handler (idempotent).
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_sigterm as *const () as usize);
        }
    }

    /// Has a SIGTERM arrived since [`install`]?
    pub fn received() -> bool {
        RECEIVED.load(Ordering::SeqCst)
    }
}

fn cmd_supervise(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let recipe = take_flag(&mut args, "--recipe")?.ok_or("supervise needs --recipe preset:seed")?;
    recipe.parse::<Recipe>()?; // fail fast on a typo, before spawning children
    let ckpt: PathBuf = take_flag(&mut args, "--ckpt")?
        .ok_or("supervise needs --ckpt DIR")?
        .into();
    let mut cfg = SuperviseConfig {
        recipe,
        ckpt,
        ..SuperviseConfig::default()
    };
    if let Some(a) = take_flag(&mut args, "--addr")? {
        cfg.addr = a;
    }
    if let Some(v) = take_parsed::<usize>(&mut args, "--replicas")? {
        cfg.replicas = v.max(1);
    }
    if let Some(v) = take_parsed::<u64>(&mut args, "--seed")? {
        cfg.seed = v;
    }
    if let Some(v) = take_parsed::<u32>(&mut args, "--restart-budget")? {
        cfg.restart_budget = v;
    }
    if let Some(v) = take_parsed::<u64>(&mut args, "--health-interval-ms")? {
        cfg.health_interval = Duration::from_millis(v.max(1));
    }
    if let Some(v) = take_parsed::<u64>(&mut args, "--health-timeout-ms")? {
        cfg.health_timeout = Duration::from_millis(v.max(1));
    }
    if let Some(v) = take_parsed::<u32>(&mut args, "--unhealthy-after")? {
        cfg.unhealthy_after = v.max(1);
    }
    if let Some(v) = take_parsed::<u64>(&mut args, "--drain-wait-ms")? {
        cfg.drain_wait = Duration::from_millis(v.max(1));
    }
    if let Some(v) = take_parsed::<u64>(&mut args, "--spawn-timeout-ms")? {
        cfg.spawn_timeout = Duration::from_millis(v.max(1));
    }
    cfg.workers = take_parsed::<usize>(&mut args, "--workers")?;
    cfg.journal_dir = take_flag(&mut args, "--journal-dir")?.map(PathBuf::from);
    reject_leftovers(&args)?;

    obs::record!("run_start", name = "siterec-serve-supervise");
    let t0 = Instant::now();
    supervise::run(cfg)?;
    obs::record!(
        "run_end",
        name = "siterec-serve-supervise",
        dur_ns = t0.elapsed().as_nanos() as u64
    );
    if let Some(path) = obs::journal_path() {
        let lines = obs::write_journal(path).map_err(|e| format!("journal write failed: {e}"))?;
        eprintln!("[siterec] journal: {lines} lines -> {}", path.display());
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let addr = take_flag(&mut args, "--addr")?.ok_or("query needs --addr HOST:PORT")?;
    let retries: usize = take_parsed(&mut args, "--retry")?.unwrap_or(0);
    // Per-attempt total deadline (connect + request + response). A hung
    // replica must never stall the client past it — that is the failure
    // mode the supervision tests drive.
    let timeout =
        Duration::from_millis(take_parsed::<u64>(&mut args, "--timeout-ms")?.unwrap_or(30_000));
    let period = take_flag(&mut args, "--period")?;
    let region: Option<usize> = take_parsed(&mut args, "--region")?;
    let ty: Option<usize> = take_parsed(&mut args, "--type")?;
    let topk: Option<usize> = take_parsed(&mut args, "--topk")?;
    let healthz = take_bare(&mut args, "--healthz");
    let metrics = take_bare(&mut args, "--metrics");
    let reload = take_bare(&mut args, "--reload");
    let drain = take_bare(&mut args, "--drain");
    let quit = take_bare(&mut args, "--quit");
    reject_leftovers(&args)?;

    let period_json = match &period {
        Some(label) => {
            let mut s = String::new();
            siterec_obs::json::write_escaped(&mut s, label);
            s
        }
        None => "null".to_string(),
    };
    let (method, path, body) = if healthz {
        ("GET", "/healthz", String::new())
    } else if metrics {
        ("GET", "/metrics", String::new())
    } else if reload {
        ("POST", "/admin/reload", String::new())
    } else if drain {
        ("POST", "/admin/drain", String::new())
    } else if quit {
        ("POST", "/admin/quit", String::new())
    } else if let Some(k) = topk {
        let t = ty.ok_or("--topk also needs --type T")?;
        (
            "POST",
            "/v1/recommend",
            format!("{{\"type\":{t},\"k\":{k},\"period\":{period_json}}}\n"),
        )
    } else if let (Some(r), Some(t)) = (region, ty) {
        (
            "POST",
            "/v1/score",
            format!("{{\"region\":{r},\"type\":{t},\"period\":{period_json}}}\n"),
        )
    } else {
        return Err(
            "query needs one of: --region R --type T | --topk K --type T | --healthz | \
             --metrics | --reload | --drain | --quit"
                .to_string(),
        );
    };

    let (status, response, request_id) =
        request_with_retry(&addr, method, path, &body, retries, timeout)?;
    print!("{response}");
    if status == 200 {
        Ok(())
    } else {
        // Surface the server-assigned request id so a failing request can be
        // looked up in the run journal (`siterec-ops query --type serve_trace`).
        match request_id {
            Some(id) => Err(format!("server answered {status} (request id {id})")),
            None => Err(format!("server answered {status}")),
        }
    }
}

fn take_bare(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Retry transport errors *and* retryable server answers (503 load shed or
/// drain, 504 scorer timeout, 429 admission control) up to `retries` extra
/// attempts. The backoff is deterministic — 100 ms doubling to a 2 s cap —
/// and a `Retry-After` header from the server overrides the local schedule
/// (capped the same), so a shedding server paces its own clients. The
/// final attempt's answer (or last transport error) is returned as-is;
/// retried answers leave their `X-Request-Id` in the error path so a
/// timed-out request can still be traced in the server's journal.
fn request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    retries: usize,
    timeout: Duration,
) -> Result<(u16, String, Option<String>), String> {
    const CAP: Duration = Duration::from_secs(2);
    let mut delay = Duration::from_millis(100);
    let mut last = String::new();
    let mut last_id: Option<String> = None;
    for attempt in 0..=retries {
        match request_once(addr, method, path, body, timeout) {
            Ok((status, response, retry_after, request_id)) => {
                let retryable = status == 503 || status == 504 || status == 429;
                if !retryable || attempt == retries {
                    return Ok((status, response, request_id));
                }
                if let Some(id) = &request_id {
                    eprintln!(
                        "siterec-serve: {status} on attempt {attempt} (request id {id}), retrying"
                    );
                }
                last_id = request_id;
                let wait = retry_after
                    .map(Duration::from_secs)
                    .unwrap_or(delay)
                    .min(CAP);
                std::thread::sleep(wait);
            }
            Err(e) => {
                last = e;
                if attempt < retries {
                    std::thread::sleep(delay.min(CAP));
                }
            }
        }
        delay = (delay * 2).min(CAP);
    }
    let id_note = match last_id {
        Some(id) => format!(" (last request id {id})"),
        None => String::new(),
    };
    Err(format!(
        "request to {addr} failed after {} attempt(s): {last}{id_note}",
        retries + 1
    ))
}

/// One HTTP/1.1 exchange over a fresh connection (`Connection: close`),
/// bounded by `timeout` end to end: the connect gets an explicit
/// `connect_timeout` (a plain `TcpStream::connect` can hang on a stopped
/// replica for minutes), and the remaining budget becomes the read/write
/// timeouts. Returns `(status, body, Retry-After seconds, X-Request-Id)`.
#[allow(clippy::type_complexity)]
fn request_once(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<(u16, String, Option<u64>, Option<String>), String> {
    let err = |e: std::io::Error| e.to_string();
    let t0 = Instant::now();
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(err)?
        .next()
        .ok_or_else(|| format!("address {addr:?} did not resolve"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout).map_err(err)?;
    let remaining = timeout
        .checked_sub(t0.elapsed())
        .unwrap_or(Duration::from_millis(1))
        .max(Duration::from_millis(1));
    stream.set_read_timeout(Some(remaining)).map_err(err)?;
    stream.set_write_timeout(Some(remaining)).map_err(err)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .map_err(err)?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(err)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response: {raw:?}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h, b.to_string()))
        .unwrap_or((raw.as_str(), String::new()));
    let header = |name: &str| {
        head.lines().find_map(|line| {
            let (n, value) = line.split_once(':')?;
            if n.trim().eq_ignore_ascii_case(name) {
                Some(value.trim().to_string())
            } else {
                None
            }
        })
    };
    let retry_after = header("retry-after").and_then(|v| v.parse::<u64>().ok());
    let request_id = header("x-request-id");
    Ok((status, body, retry_after, request_id))
}
