//! Failpoint chaos soak: sweep seeded fault schedules over the **full
//! lifecycle** — train → checkpoint → export → image roundtrip → serve →
//! reload — and prove the stack heals every injected fault with
//! **raw-bit-identical** final scores versus a fault-free run.
//!
//! For each seeded schedule (deterministic SplitMix64 picks from a menu of
//! healable seam/mode combinations: checkpoint write/read, journal append,
//! embedding-image save/load, serve reload, scorer drop) and each thread
//! configuration, one lifecycle runs fully in-process:
//!
//! 1. **Train-until-complete**: train the tiny recipe with durable
//!    checkpoints; if an injected fault ate the newest generation(s), the
//!    probe restore falls back and another bounded round retrains the
//!    missing epochs from the last valid generation — deterministic
//!    retraining reproduces identical bits, so healing never changes
//!    scores.
//! 2. **Image roundtrip**: write the `SREMB1` image (retry heals transient
//!    faults), read it back (CRC catches silent corruption), rewrite until
//!    the roundtrip is byte-identical — bounded.
//! 3. **Serve**: an in-process server answers a query sweep over HTTP; the
//!    client retries 503/504 answers (a dropped scorer batch surfaces as a
//!    fast 504). Every score must match the offline reference bits.
//! 4. **Reload dance**: `/admin/reload` until the store is healthy and
//!    fully trained; a failed reload must flip `/healthz` to `degraded`
//!    (old store keeps serving) and the next success must recover it.
//!    Post-reload scores are re-checked against the reference bits.
//! 5. **Journal**: written through its own faulted seam with retry, then
//!    schema-validated; `failpoint` record count must equal the number of
//!    firings the registry reports.
//!
//! Zero panics, schema-valid journals, and bit-identical scores across
//! every schedule and thread count — or the process dies loudly. Prints
//! `chaos_soak: all assertions passed` on success.
//!
//! Usage: `chaos_soak [--seeds 3] [--seed0 101] [--epochs 3]
//! [--threads 1,8] [--recipe-seed 7] [--dir <scratch>]`

use siterec_core::O2SiteRec;
use siterec_geo::Period;
use siterec_obs as obs;
use siterec_serve::{start, EmbeddingStore, Recipe, Reloader, ServeConfig};
use siterec_tensor::checkpoint::CheckpointPolicy;
use siterec_tensor::parallel::ParallelConfig;
use std::io::{Read, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Healable (seam, mode) combinations the schedule generator draws from.
/// `journal.append=corrupt` is deliberately absent: a silently corrupted
/// journal is unverifiable by construction (nothing downstream checksums
/// it), and the soak asserts journal validity.
const MENU: &[(&str, &str)] = &[
    ("ckpt.write.fsync", "err"),
    ("ckpt.write.fsync", "short"),
    ("ckpt.write.fsync", "corrupt"),
    ("ckpt.read.section", "err"),
    ("ckpt.read.section", "short"),
    ("ckpt.read.section", "corrupt"),
    ("journal.append", "err"),
    ("journal.append", "short"),
    ("emb.image.save", "err"),
    ("emb.image.save", "short"),
    ("emb.image.save", "corrupt"),
    ("emb.image.load", "err"),
    ("emb.image.load", "short"),
    ("emb.image.load", "corrupt"),
    ("serve.reload", "err"),
    ("serve.score", "err"),
];

struct Args {
    seeds: usize,
    seed0: u64,
    epochs: usize,
    threads: Vec<usize>,
    recipe_seed: u64,
    dir: PathBuf,
}

fn parse_args() -> Args {
    let mut a = Args {
        seeds: 3,
        seed0: 101,
        epochs: 3,
        threads: vec![1, 8],
        recipe_seed: 7,
        dir: std::env::temp_dir().join(format!("siterec_chaos_soak_{}", std::process::id())),
    };
    let mut it = std::env::args().skip(1);
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next()
            .unwrap_or_else(|| panic!("missing value for {flag}"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seeds" => a.seeds = need(&mut it, "--seeds").parse().expect("--seeds"),
            "--seed0" => a.seed0 = need(&mut it, "--seed0").parse().expect("--seed0"),
            "--epochs" => a.epochs = need(&mut it, "--epochs").parse().expect("--epochs"),
            "--threads" => {
                a.threads = need(&mut it, "--threads")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads"))
                    .collect();
            }
            "--recipe-seed" => {
                a.recipe_seed = need(&mut it, "--recipe-seed")
                    .parse()
                    .expect("--recipe-seed");
            }
            "--dir" => a.dir = PathBuf::from(need(&mut it, "--dir")),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(!a.threads.is_empty(), "--threads must name at least one");
    a
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded schedule: 4 distinct seams from the menu; the first entry
/// always fires on hit 1 (so every schedule injects at least one fault),
/// the rest on hit 1 or 2. `serve.reload=err@1` is appended when the draw
/// missed it, so every schedule also walks the degraded-mode reload dance.
fn schedule_for(seed: u64) -> String {
    let mut rng = seed;
    let mut names = std::collections::BTreeSet::new();
    let mut entries = Vec::new();
    while entries.len() < 4 {
        let (name, mode) = MENU[(splitmix(&mut rng) % MENU.len() as u64) as usize];
        if !names.insert(name) {
            continue;
        }
        let hit = if entries.is_empty() {
            1
        } else {
            1 + splitmix(&mut rng) % 2
        };
        entries.push(format!("{name}={mode}@{hit}"));
    }
    if names.insert("serve.reload") {
        entries.push("serve.reload=err@1".to_string());
    }
    entries.join(",")
}

/// Rebuild the recipe model with an explicit tensor thread count (the only
/// knob [`Recipe::build_model`] pins that the soak varies).
fn build_model(recipe: &Recipe, epochs: usize, tensor_threads: usize) -> O2SiteRec {
    let (data, task) = recipe.context();
    let mut cfg = recipe.config(epochs);
    cfg.parallel = ParallelConfig::with_threads(tensor_threads);
    O2SiteRec::new(&data, &task, cfg)
}

/// One `Connection: close` HTTP exchange; returns `(status, body)`.
fn http(addr: &str, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Client-side bounded retry: 503 (shed) and 504 (scorer drop/stall) are
/// the server telling us to try again; everything else is final.
fn http_retry(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut delay = Duration::from_millis(10);
    let mut last = (0u16, String::new());
    for _ in 0..8 {
        match http(addr, method, path, body) {
            Ok((status, b)) if status != 503 && status != 504 => return (status, b),
            Ok(got) => last = got,
            Err(e) => last = (0, e.to_string()),
        }
        std::thread::sleep(delay);
        delay = (delay * 2).min(Duration::from_millis(200));
    }
    panic!("request {method} {path} did not succeed within the retry budget (last: {last:?})");
}

fn score_query(region: usize, ty: usize, period: Option<Period>) -> String {
    let p = match period {
        Some(p) => format!("\"{}\"", p.label()),
        None => "null".to_string(),
    };
    format!("{{\"region\":{region},\"type\":{ty},\"period\":{p}}}\n")
}

fn response_bits(body: &str) -> u32 {
    let line = body.lines().next().expect("one response line");
    let v = obs::json::parse(line).expect("valid response JSON");
    let score = v
        .get("score")
        .and_then(|s| s.as_num())
        .expect("score field");
    (score as f32).to_bits()
}

fn json_num(body: &str, field: &str) -> Option<f64> {
    obs::json::parse(body.trim())
        .ok()?
        .get(field)
        .and_then(|v| v.as_num())
}

struct Outcome {
    bits: Vec<u32>,
    degraded_seen: bool,
    fired: u64,
}

/// One full train → checkpoint → export → serve → reload lifecycle under
/// `schedule` (None = fault-free), returning the served score bits.
fn run_lifecycle(
    tag: &str,
    recipe: &Recipe,
    epochs: usize,
    tensor_threads: usize,
    workers: usize,
    dir: &Path,
    schedule: Option<&str>,
) -> Outcome {
    obs::reset();
    obs::set_enabled(true);
    match schedule {
        Some(s) => obs::failpoint::arm(s).expect("valid schedule"),
        None => obs::failpoint::disarm(),
    }

    // 1. Train until a probe restore sees the fully-trained checkpoint.
    //    Faults can eat the newest generation(s); retraining resumes from
    //    the last valid one and, being a pure function of the seed,
    //    reproduces bit-identical parameters.
    let ckpt = dir.join(format!("ckpt-{tag}"));
    let _ = std::fs::remove_dir_all(&ckpt);
    let mut trained: Option<O2SiteRec> = None;
    for _round in 0..6 {
        let mut m = build_model(recipe, epochs, tensor_threads);
        m.try_train_resumable(&CheckpointPolicy::new(&ckpt))
            .expect("training must survive injected I/O faults");
        let mut probe = build_model(recipe, epochs, tensor_threads);
        if let Ok(Some(n)) = probe.restore_latest(&ckpt) {
            if n == epochs {
                trained = Some(probe);
                break;
            }
        }
    }
    let model = trained.expect("training did not converge within the healing budget");

    // Offline reference bits for this run (bit-identical across runs is
    // asserted by the caller against the fault-free lifecycle).
    let store = EmbeddingStore::new(model.export_serving());
    let sweep: Vec<(usize, usize, Option<Period>)> = (0..store.n_regions())
        .take(24)
        .map(|region| {
            let period = match region % 6 {
                5 => None,
                i => Some(Period::from_index(i)),
            };
            (region, region % 3, period)
        })
        .collect();
    let offline: Vec<u32> = sweep
        .iter()
        .map(|&(r, t, p)| model.predict_for(&[(r, t)], p)[0].to_bits())
        .collect();

    // 2. Image roundtrip: heal write faults by rewriting, read faults by
    //    rereading — CRC sections turn silent corruption into clean errors.
    let image = dir.join(format!("emb-{tag}.sremb"));
    let reference_bytes = store.encode();
    let mut image_ok = false;
    for _ in 0..4 {
        if store.write_image(&image).is_err() {
            continue;
        }
        if let Ok(loaded) = EmbeddingStore::read_image(&image) {
            assert_eq!(
                loaded.encode(),
                reference_bytes,
                "{tag}: image roundtrip must be byte-identical"
            );
            image_ok = true;
            break;
        }
    }
    assert!(
        image_ok,
        "{tag}: image roundtrip did not heal within budget"
    );

    // 3. Serve the sweep; every answered score must match offline bits.
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap: 256,
        max_batch: 8,
        cache_cap: 64,
        max_requests: None,
        score_timeout: Duration::from_secs(10),
        read_timeout: Duration::from_millis(100),
        ..ServeConfig::from_env()
    };
    let reloader: Reloader = {
        let recipe = *recipe;
        let ckpt = ckpt.clone();
        Box::new(move || {
            let mut m = build_model(&recipe, epochs, tensor_threads);
            match m.restore_latest(&ckpt) {
                Ok(Some(_)) => Ok(EmbeddingStore::new(m.export_serving())),
                Ok(None) => Err("no valid checkpoint generation".to_string()),
                Err(e) => Err(e.to_string()),
            }
        })
    };
    let handle = start(store, cfg, Some(reloader)).expect("bind in-process server");
    let addr = handle.addr().to_string();
    let mut bits = Vec::with_capacity(sweep.len());
    for (i, &(r, t, p)) in sweep.iter().enumerate() {
        let (status, body) = http_retry(&addr, "POST", "/v1/score", &score_query(r, t, p));
        assert_eq!(status, 200, "{tag}: sweep request {i} failed: {body}");
        let got = response_bits(&body);
        assert_eq!(
            got, offline[i],
            "{tag}: served score {i} (region {r}, type {t}, period {p:?}) diverged from offline"
        );
        bits.push(got);
    }

    // 4. Reload dance: a failed reload must degrade (old store still
    //    serving), and reloading until healthy + fully trained must
    //    recover. A stale-generation fallback reload reports fewer epochs
    //    on /healthz — the operator playbook is "reload again".
    let mut degraded_seen = false;
    let mut recovered = false;
    for attempt in 0..6 {
        let (st, body) = http(&addr, "POST", "/admin/reload", "").expect("reload request");
        let (hst, health) = http(&addr, "GET", "/healthz", "").expect("healthz request");
        assert_eq!(hst, 200, "{tag}: healthz must always answer");
        if st == 200 {
            let epochs_now = json_num(&health, "trained_epochs").unwrap_or(-1.0) as usize;
            if health.contains("\"status\":\"ok\"") && epochs_now == epochs {
                recovered = true;
                break;
            }
        } else {
            assert_eq!(
                st, 500,
                "{tag}: reload attempt {attempt} returned {st}: {body}"
            );
            assert!(
                health.contains("\"status\":\"degraded\""),
                "{tag}: failed reload did not degrade /healthz: {health}"
            );
            // Degraded never means down: the old store still answers.
            let (s, b) = http_retry(
                &addr,
                "POST",
                "/v1/score",
                &score_query(sweep[0].0, sweep[0].1, sweep[0].2),
            );
            assert_eq!(s, 200, "{tag}: degraded server stopped serving: {b}");
            assert_eq!(
                response_bits(&b),
                offline[0],
                "{tag}: degraded score diverged"
            );
            degraded_seen = true;
        }
    }
    assert!(
        recovered,
        "{tag}: reload never converged to a healthy store"
    );

    // Post-recovery re-check: the reloaded store (cache cleared) must
    // reproduce the same bits.
    for (i, &(r, t, p)) in sweep.iter().take(8).enumerate() {
        let (status, body) = http_retry(&addr, "POST", "/v1/score", &score_query(r, t, p));
        assert_eq!(status, 200, "{tag}: post-reload request {i} failed: {body}");
        assert_eq!(
            response_bits(&body),
            offline[i],
            "{tag}: post-reload score {i} diverged"
        );
    }

    handle.shutdown();
    handle.join();

    // 5. Journal through its own faulted seam, then validate. The firing
    //    snapshot is taken *after* the write: a `journal.append` fault
    //    firing mid-write is itself journaled by the retry re-serialization
    //    and must be part of the count.
    let journal = dir.join(format!("journal-{tag}.jsonl"));
    obs::write_journal(&journal).expect("journal write must heal within the retry budget");
    let fp_stats = obs::failpoint::stats();
    let fired: u64 = fp_stats.iter().map(|s| s.fired).sum();
    if fp_stats
        .iter()
        .any(|s| s.name == "serve.reload" && s.fired > 0)
    {
        assert!(
            degraded_seen,
            "{tag}: serve.reload fired but no degraded state was observed"
        );
    }
    let text = std::fs::read_to_string(&journal).expect("read journal");
    let stats = obs::validate_journal(&text)
        .unwrap_or_else(|e| panic!("{tag}: journal failed schema validation: {e}"));
    assert!(
        stats.count("serve_request") >= sweep.len(),
        "{tag}: journal under-reports serve_request records"
    );
    assert_eq!(
        stats.count("failpoint") as u64,
        fired,
        "{tag}: journal failpoint records disagree with registry firings"
    );
    if degraded_seen {
        assert!(
            stats.count("serve_degraded") >= 1,
            "{tag}: degraded state observed but never journaled"
        );
    }

    obs::failpoint::disarm();
    Outcome {
        bits,
        degraded_seen,
        fired,
    }
}

fn main() {
    let args = parse_args();
    let _ = std::fs::remove_dir_all(&args.dir);
    std::fs::create_dir_all(&args.dir).expect("scratch dir");
    let recipe = Recipe {
        preset: siterec_serve::Preset::Tiny,
        seed: args.recipe_seed,
    };

    println!(
        "chaos_soak: recipe {recipe}, {} epochs, {} schedules, threads {:?}",
        args.epochs, args.seeds, args.threads
    );
    let reference = run_lifecycle(
        "ref",
        &recipe,
        args.epochs,
        args.threads[0],
        args.threads[0],
        &args.dir,
        None,
    );
    assert_eq!(reference.fired, 0, "fault-free run fired failpoints");
    println!(
        "chaos_soak: fault-free reference captured ({} scores)",
        reference.bits.len()
    );

    let mut total_fired = 0u64;
    let mut degraded_runs = 0usize;
    for k in 0..args.seeds {
        let schedule = schedule_for(args.seed0 + k as u64);
        for &t in &args.threads {
            let tag = format!("s{k}t{t}");
            println!("chaos_soak: [{tag}] schedule {schedule}");
            let out = run_lifecycle(&tag, &recipe, args.epochs, t, t, &args.dir, Some(&schedule));
            assert_eq!(
                out.bits, reference.bits,
                "[{tag}] served bits diverged from the fault-free reference"
            );
            assert!(
                out.fired > 0,
                "[{tag}] schedule injected no faults — soak proved nothing"
            );
            total_fired += out.fired;
            degraded_runs += usize::from(out.degraded_seen);
            println!(
                "chaos_soak: [{tag}] ok — {} faults fired, bits identical{}",
                out.fired,
                if out.degraded_seen {
                    ", degraded+recovered"
                } else {
                    ""
                }
            );
        }
    }
    println!(
        "chaos_soak: {} schedules x {} thread configs, {total_fired} faults fired, {degraded_runs} degraded episodes, all bits identical to fault-free",
        args.seeds,
        args.threads.len()
    );
    let _ = std::fs::remove_dir_all(&args.dir);
    println!("chaos_soak: all assertions passed");
}
