//! Supervision chaos harness: continuous client traffic against a
//! `siterec-serve supervise` process while a seeded schedule kills, hangs
//! (SIGSTOP), and rolling-restarts its replicas — proving client-visible
//! availability, zero dropped in-flight work across graceful drains, and
//! raw-bit determinism under process churn.
//!
//! The drill:
//!
//! 1. **Train** the tiny recipe in-process (fault-free) and take offline
//!    reference bits for a query sweep.
//! 2. **Undisturbed references**: serve the sweep from in-process servers
//!    at 1 and 8 workers; both must match the offline bits exactly.
//! 3. **Supervise**: spawn `siterec-serve supervise` with N replicas,
//!    per-replica journals, and a supervisor journal; parse its
//!    `listening on <addr>` line.
//! 4. **Traffic**: a client thread continuously scores the sweep, routing
//!    each request to a healthy replica read from the supervisor's
//!    `/healthz` JSON, retrying across replicas. Every answered score must
//!    carry the reference bits; every request must eventually succeed.
//! 5. **Chaos**: a SplitMix64 schedule of kill (SIGKILL a replica), hang
//!    (SIGSTOP until the supervisor declares it hung and restarts it), and
//!    roll (`POST /admin/roll`, wait for `rolls_completed`) events, each
//!    waited to convergence (replica healthy again) before the next.
//! 6. **Audit**: quit the supervisor (which drains its replicas), then
//!    schema-validate the supervisor journal (event counts must match the
//!    schedule: every kill/hang produced `unhealthy` + `restart` + `spawn`,
//!    every roll produced its `drain`s and one `roll`, and nothing
//!    `gave_up`) and every replica journal (each graceful generation ends
//!    in a `serve_drain` record with `abandoned == 0`).
//!
//! Prints `chaos_supervise: all assertions passed` on success. `--keep`
//! leaves the scratch directory (with all journals) behind for the ops
//! smoke to inspect.
//!
//! Usage: `chaos_supervise [--replicas 2] [--events 6] [--seed 5]
//! [--epochs 2] [--recipe-seed 7] [--threads 1,8] [--dir <scratch>]
//! [--keep]`

use siterec_geo::Period;
use siterec_obs as obs;
use siterec_serve::{start, EmbeddingStore, Recipe, ServeConfig};
use siterec_tensor::checkpoint::CheckpointPolicy;
use std::io::{BufRead, BufReader, Read, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    replicas: usize,
    events: usize,
    seed: u64,
    epochs: usize,
    recipe_seed: u64,
    threads: Vec<usize>,
    dir: PathBuf,
    keep: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        replicas: 2,
        events: 6,
        seed: 5,
        epochs: 2,
        recipe_seed: 7,
        threads: vec![1, 8],
        dir: std::env::temp_dir().join(format!("siterec_chaos_supervise_{}", std::process::id())),
        keep: false,
    };
    let mut it = std::env::args().skip(1);
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next()
            .unwrap_or_else(|| panic!("missing value for {flag}"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--replicas" => a.replicas = need(&mut it, "--replicas").parse().expect("--replicas"),
            "--events" => a.events = need(&mut it, "--events").parse().expect("--events"),
            "--seed" => a.seed = need(&mut it, "--seed").parse().expect("--seed"),
            "--epochs" => a.epochs = need(&mut it, "--epochs").parse().expect("--epochs"),
            "--recipe-seed" => {
                a.recipe_seed = need(&mut it, "--recipe-seed")
                    .parse()
                    .expect("--recipe-seed");
            }
            "--threads" => {
                a.threads = need(&mut it, "--threads")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads"))
                    .collect();
            }
            "--dir" => a.dir = PathBuf::from(need(&mut it, "--dir")),
            "--keep" => a.keep = true,
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(a.replicas >= 2, "--replicas must be >= 2 for zero-downtime");
    a
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One `Connection: close` HTTP exchange with tight timeouts; returns
/// `(status, body)`.
fn http(addr: &str, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let sock = addr
        .parse()
        .map_err(|e| std::io::Error::other(format!("bad addr {addr}: {e}")))?;
    let mut stream = TcpStream::connect_timeout(&sock, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn score_query(region: usize, ty: usize, period: Option<Period>) -> String {
    let p = match period {
        Some(p) => format!("\"{}\"", p.label()),
        None => "null".to_string(),
    };
    format!("{{\"region\":{region},\"type\":{ty},\"period\":{p}}}\n")
}

fn response_bits(body: &str) -> u32 {
    let line = body.lines().next().expect("one response line");
    let v = obs::json::parse(line).expect("valid response JSON");
    let score = v
        .get("score")
        .and_then(|s| s.as_num())
        .expect("score field");
    (score as f32).to_bits()
}

/// Snapshot of one replica as reported by the supervisor's `/healthz`.
#[derive(Debug, Clone)]
struct ReplicaView {
    addr: Option<String>,
    pid: i32,
    healthy: bool,
    restarts: u64,
    gave_up: bool,
}

/// Snapshot of the supervisor's `/healthz` JSON.
#[derive(Debug, Clone)]
struct SupView {
    replicas: Vec<ReplicaView>,
    rolls_completed: u64,
}

fn fetch_status(sup_addr: &str) -> Option<SupView> {
    let (status, body) = http(sup_addr, "GET", "/healthz", "").ok()?;
    if status != 200 {
        return None;
    }
    let v = obs::json::parse(body.trim()).ok()?;
    let obs::json::Json::Arr(items) = v.get("replicas")? else {
        return None;
    };
    let replicas = items
        .iter()
        .map(|r| ReplicaView {
            addr: r
                .get("addr")
                .and_then(|a| a.as_str())
                .map(|s| s.to_string()),
            pid: r.get("pid").and_then(|p| p.as_num()).unwrap_or(0.0) as i32,
            healthy: r.get("healthy") == Some(&obs::json::Json::Bool(true)),
            restarts: r.get("restarts").and_then(|n| n.as_num()).unwrap_or(0.0) as u64,
            gave_up: r.get("gave_up") == Some(&obs::json::Json::Bool(true)),
        })
        .collect();
    let rolls_completed = v
        .get("rolls_completed")
        .and_then(|n| n.as_num())
        .unwrap_or(0.0) as u64;
    Some(SupView {
        replicas,
        rolls_completed,
    })
}

/// Poll the supervisor until `pred` holds; panic past the deadline.
fn wait_for(sup_addr: &str, what: &str, deadline: Duration, pred: impl Fn(&SupView) -> bool) {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if let Some(view) = fetch_status(sup_addr) {
            if pred(&view) {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!(
        "timed out after {deadline:?} waiting for: {what} (last status: {:?})",
        fetch_status(sup_addr)
    );
}

#[cfg(unix)]
fn send_signal(pid: i32, sig: i32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    unsafe {
        kill(pid, sig);
    }
}

#[cfg(unix)]
const SIGKILL: i32 = 9;
#[cfg(unix)]
const SIGSTOP: i32 = 19;

/// Locate the sibling `siterec-serve` binary next to this harness.
fn serve_binary() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("binary dir");
    let name = if cfg!(windows) {
        "siterec-serve.exe"
    } else {
        "siterec-serve"
    };
    let candidate = dir.join(name);
    assert!(
        candidate.exists(),
        "{} not found next to chaos_supervise — build the full crate first",
        candidate.display()
    );
    candidate
}

/// Spawn the supervisor and parse its `listening on <addr>` line; a drain
/// thread keeps consuming stdout afterwards.
fn spawn_supervisor(
    args: &Args,
    ckpt: &Path,
    journal_dir: &Path,
    journal: &Path,
) -> (Child, String) {
    let mut child = Command::new(serve_binary())
        .arg("supervise")
        .arg("--recipe")
        .arg(format!("tiny:{}", args.recipe_seed))
        .arg("--ckpt")
        .arg(ckpt)
        .arg("--replicas")
        .arg(args.replicas.to_string())
        .arg("--seed")
        .arg(args.seed.to_string())
        .arg("--restart-budget")
        .arg("32")
        .arg("--health-interval-ms")
        .arg("100")
        .arg("--health-timeout-ms")
        .arg("250")
        .arg("--unhealthy-after")
        .arg("3")
        .arg("--drain-wait-ms")
        .arg("8000")
        .arg("--workers")
        .arg("2")
        .arg("--journal-dir")
        .arg(journal_dir)
        .env("SITEREC_JOURNAL", journal)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn supervisor");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("supervisor exited before listening")
            .expect("read supervisor stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.trim().to_string();
        }
    };
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

/// The continuous-traffic client: cycles the sweep, each request retried
/// across healthy replicas until it succeeds with the expected bits.
/// Availability assertion: no request may exhaust its retry budget even
/// while replicas are being killed, hung, and rolled.
fn traffic_loop(
    sup_addr: String,
    sweep: Vec<(usize, usize, Option<Period>)>,
    offline: Vec<u32>,
    stop: Arc<AtomicBool>,
    done: Arc<AtomicU64>,
) {
    let mut i = 0usize;
    let mut rr = 0usize;
    while !stop.load(Ordering::SeqCst) {
        let (r, t, p) = sweep[i % sweep.len()];
        let want = offline[i % sweep.len()];
        let body = score_query(r, t, p);
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut answered = false;
        while Instant::now() < deadline {
            let Some(view) = fetch_status(&sup_addr) else {
                std::thread::sleep(Duration::from_millis(25));
                continue;
            };
            let live: Vec<&str> = view
                .replicas
                .iter()
                .filter(|r| r.healthy)
                .filter_map(|r| r.addr.as_deref())
                .collect();
            if live.is_empty() {
                std::thread::sleep(Duration::from_millis(25));
                continue;
            }
            rr += 1;
            let target = live[rr % live.len()];
            match http(target, "POST", "/v1/score", &body) {
                Ok((200, resp)) => {
                    assert_eq!(
                        response_bits(&resp),
                        want,
                        "request {i} (region {r}, type {t}, period {p:?}) answered wrong bits via {target}"
                    );
                    answered = true;
                    break;
                }
                // 503 (drain/shed), 504 (scorer), 429 (admission), transport
                // errors (killed replica): retry another replica.
                Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        assert!(
            answered,
            "request {i} never succeeded within its retry budget — availability hole"
        );
        done.fetch_add(1, Ordering::SeqCst);
        i += 1;
    }
}

/// Serve the sweep from an in-process server at `workers` and return the
/// answered bits (the undisturbed reference).
fn undisturbed_bits(
    store: EmbeddingStore,
    workers: usize,
    sweep: &[(usize, usize, Option<Period>)],
) -> Vec<u32> {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap: 256,
        max_batch: 8,
        cache_cap: 64,
        max_requests: None,
        score_timeout: Duration::from_secs(10),
        read_timeout: Duration::from_millis(100),
        ..ServeConfig::from_env()
    };
    let handle = start(store, cfg, None).expect("bind undisturbed server");
    let addr = handle.addr().to_string();
    let bits = sweep
        .iter()
        .map(|&(r, t, p)| {
            let (status, body) = http(&addr, "POST", "/v1/score", &score_query(r, t, p))
                .expect("undisturbed request");
            assert_eq!(status, 200, "undisturbed server refused: {body}");
            response_bits(&body)
        })
        .collect();
    handle.shutdown();
    handle.join();
    bits
}

#[cfg(not(unix))]
fn main() {
    eprintln!("chaos_supervise: requires Unix signals; skipping");
    println!("chaos_supervise: all assertions passed");
}

#[cfg(unix)]
fn main() {
    let args = parse_args();
    let _ = std::fs::remove_dir_all(&args.dir);
    std::fs::create_dir_all(&args.dir).expect("scratch dir");
    let recipe = Recipe {
        preset: siterec_serve::Preset::Tiny,
        seed: args.recipe_seed,
    };

    // 1. Train fault-free, in-process, and take offline reference bits.
    let ckpt = args.dir.join("ckpt");
    let mut model = recipe.build_model(args.epochs);
    model
        .try_train_resumable(&CheckpointPolicy::new(&ckpt))
        .expect("fault-free training");
    let store = EmbeddingStore::new(model.export_serving());
    let sweep: Vec<(usize, usize, Option<Period>)> = (0..store.n_regions())
        .take(18)
        .map(|region| {
            let period = match region % 6 {
                5 => None,
                i => Some(Period::from_index(i)),
            };
            (region, region % 3, period)
        })
        .collect();
    let offline: Vec<u32> = sweep
        .iter()
        .map(|&(r, t, p)| model.predict_for(&[(r, t)], p)[0].to_bits())
        .collect();
    println!(
        "chaos_supervise: recipe {recipe}, {} epochs, {} sweep queries",
        args.epochs,
        sweep.len()
    );

    // 2. Undisturbed in-process references at every thread config.
    for &workers in &args.threads {
        let bits = undisturbed_bits(EmbeddingStore::new(model.export_serving()), workers, &sweep);
        assert_eq!(
            bits, offline,
            "undisturbed server at {workers} workers diverged from offline bits"
        );
        println!("chaos_supervise: undisturbed reference at {workers} workers matches offline");
    }

    // 3. Spawn the supervisor and wait for every replica to turn healthy.
    let journal_dir = args.dir.join("journals");
    let sup_journal = args.dir.join("supervisor.jsonl");
    let (mut sup, sup_addr) = spawn_supervisor(&args, &ckpt, &journal_dir, &sup_journal);
    println!("chaos_supervise: supervisor on {sup_addr}");
    wait_for(
        &sup_addr,
        "all replicas healthy",
        Duration::from_secs(90),
        |v| v.replicas.len() == args.replicas && v.replicas.iter().all(|r| r.healthy),
    );

    // 4. Continuous traffic.
    let stop = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicU64::new(0));
    let traffic = {
        let (sup_addr, sweep, offline) = (sup_addr.clone(), sweep.clone(), offline.clone());
        let (stop, done) = (stop.clone(), done.clone());
        std::thread::Builder::new()
            .name("traffic".to_string())
            .spawn(move || traffic_loop(sup_addr, sweep, offline, stop, done))
            .expect("traffic thread")
    };

    // 5. The seeded chaos schedule, each event driven to convergence.
    let mut rng = args.seed;
    let (mut kills, mut hangs, mut rolls) = (0u64, 0u64, 0u64);
    for k in 0..args.events {
        std::thread::sleep(Duration::from_millis(300));
        let view = fetch_status(&sup_addr).expect("supervisor status");
        match splitmix(&mut rng) % 3 {
            0 => {
                let r = (splitmix(&mut rng) % args.replicas as u64) as usize;
                let (pid, restarts) = (view.replicas[r].pid, view.replicas[r].restarts);
                println!("chaos_supervise: event {k}: KILL replica {r} (pid {pid})");
                send_signal(pid, SIGKILL);
                kills += 1;
                wait_for(
                    &sup_addr,
                    "killed replica restarted healthy",
                    Duration::from_secs(90),
                    move |v| v.replicas[r].restarts > restarts && v.replicas[r].healthy,
                );
            }
            1 => {
                let r = (splitmix(&mut rng) % args.replicas as u64) as usize;
                let (pid, restarts) = (view.replicas[r].pid, view.replicas[r].restarts);
                println!("chaos_supervise: event {k}: HANG replica {r} (pid {pid})");
                send_signal(pid, SIGSTOP);
                hangs += 1;
                // The supervisor must detect the hang via failed health
                // checks, kill the stopped process, and restart it.
                wait_for(
                    &sup_addr,
                    "hung replica detected and restarted",
                    Duration::from_secs(90),
                    move |v| v.replicas[r].restarts > restarts && v.replicas[r].healthy,
                );
            }
            _ => {
                let before = view.rolls_completed;
                println!("chaos_supervise: event {k}: ROLL all replicas");
                let (st, _) = http(&sup_addr, "POST", "/admin/roll", "").expect("roll request");
                assert_eq!(st, 200, "roll request refused");
                rolls += 1;
                wait_for(
                    &sup_addr,
                    "rolling restart completed",
                    Duration::from_secs(120),
                    move |v| v.rolls_completed > before && v.replicas.iter().all(|r| r.healthy),
                );
            }
        }
        let served = done.load(Ordering::SeqCst);
        println!("chaos_supervise: event {k} converged ({served} requests served so far)");
    }

    // Let traffic flow over the final healthy fleet, then stop it. Joining
    // propagates any assertion failure from the traffic thread.
    std::thread::sleep(Duration::from_millis(500));
    stop.store(true, Ordering::SeqCst);
    traffic.join().expect("traffic thread must not panic");
    let served = done.load(Ordering::SeqCst);
    assert!(served > 0, "traffic thread never completed a request");
    let final_view = fetch_status(&sup_addr).expect("final status");
    assert!(
        final_view.replicas.iter().all(|r| !r.gave_up),
        "a replica exhausted its restart budget: {final_view:?}"
    );

    // 6. Graceful quit (drains every replica), then audit the journals.
    let (st, _) = http(&sup_addr, "POST", "/admin/quit", "").expect("quit request");
    assert_eq!(st, 200, "quit request refused");
    let status = sup.wait().expect("wait supervisor");
    assert!(status.success(), "supervisor exited with {status}");

    // Supervisor journal: schema-valid, events match the schedule.
    let text = std::fs::read_to_string(&sup_journal).expect("supervisor journal");
    let stats = obs::validate_journal(&text).expect("supervisor journal schema-valid");
    let count = |event: &str| {
        text.lines()
            .filter(|l| l.contains("\"type\":\"supervisor_event\""))
            .filter(|l| l.contains(&format!("\"event\":\"{event}\"")))
            .count() as u64
    };
    assert!(
        stats.count("supervisor_event") > 0,
        "no supervisor_event records journaled"
    );
    let faults = kills + hangs;
    assert!(
        count("spawn") >= args.replicas as u64 + faults + rolls * args.replicas as u64,
        "spawn records under-report the schedule (spawns {}, replicas {}, faults {faults}, rolls {rolls})",
        count("spawn"),
        args.replicas
    );
    assert!(
        count("unhealthy") >= faults,
        "unhealthy records ({}) < injected faults ({faults})",
        count("unhealthy")
    );
    assert!(
        count("restart") >= faults,
        "restart records ({}) < injected faults ({faults})",
        count("restart")
    );
    assert_eq!(count("roll"), rolls, "roll records disagree with schedule");
    assert!(
        count("drain") >= rolls * args.replicas as u64 + args.replicas as u64,
        "drain records ({}) under-report rolls + final teardown",
        count("drain")
    );
    assert_eq!(
        count("gave_up"),
        0,
        "gave_up events under a generous budget"
    );

    // Replica journals: every one schema-valid with a clean tail; every
    // graceful generation carries a serve_drain record with zero abandoned
    // jobs (the zero-dropped-in-flight guarantee); the final teardown
    // produced at least one graceful drain per replica.
    let mut drained_journals = 0usize;
    for entry in std::fs::read_dir(&journal_dir).expect("journal dir") {
        let path = entry.expect("dir entry").path();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => continue, // a killed generation may have no journal
        };
        let stats = obs::validate_journal(&text).unwrap_or_else(|e| {
            panic!("replica journal {} failed validation: {e}", path.display())
        });
        if stats.count("serve_drain") > 0 {
            drained_journals += 1;
            for line in text
                .lines()
                .filter(|l| l.contains("\"type\":\"serve_drain\""))
            {
                let v = obs::json::parse(line).expect("serve_drain line");
                let abandoned = v.get("abandoned").and_then(|n| n.as_num()).unwrap_or(-1.0);
                assert_eq!(
                    abandoned,
                    0.0,
                    "graceful drain abandoned queued jobs in {}",
                    path.display()
                );
            }
        }
    }
    assert!(
        drained_journals >= args.replicas,
        "only {drained_journals} replica journals carry serve_drain (expected >= {})",
        args.replicas
    );

    println!(
        "chaos_supervise: {} events ({kills} kills, {hangs} hangs, {rolls} rolls), {served} client requests, {drained_journals} graceful drains audited",
        args.events
    );
    if !args.keep {
        let _ = std::fs::remove_dir_all(&args.dir);
    }
    println!("chaos_supervise: all assertions passed");
}
