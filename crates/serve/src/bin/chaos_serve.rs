//! Chaos harness for the serving layer: SIGKILL the server mid-traffic and
//! prove it resumes serving **bit-identical** scores from the checkpoint.
//!
//! Scenario (all deterministic given `--seed`):
//!
//! 1. Train the `tiny:<seed>` recipe with durable checkpoints into a scratch
//!    directory (in-process — the same training path `siterec-serve train`
//!    uses).
//! 2. Compute the offline reference scores for a fixed query sweep (every
//!    period selector) with [`siterec_core::O2SiteRec::predict_for`] on a
//!    fresh model that adopted the checkpoint.
//! 3. Spawn a real `siterec-serve run` child on an ephemeral port, issue the
//!    first half of the sweep over HTTP, and require every answered score to
//!    match the reference bits exactly.
//! 4. SIGKILL the child mid-traffic (no shutdown handler runs — exactly what
//!    a crashed server leaves behind).
//! 5. Spawn a second child from the same checkpoint directory, replay the
//!    *full* sweep, and require every score — including the ones the dead
//!    server never answered — to be bit-identical to the reference.
//! 6. Validate the surviving child's JSONL journal against the obs schema
//!    and require `serve_request` + `serve_reload` records.
//!
//! Exits non-zero (via panic) on any violated assertion; prints
//! `chaos_serve: all assertions passed` on success.
//!
//! Usage: `chaos_serve [--seed 7] [--epochs 5] [--dir <scratch>]`

use siterec_geo::Period;
use siterec_obs as obs;
use siterec_serve::Recipe;
use siterec_tensor::checkpoint::CheckpointPolicy;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct Args {
    seed: u64,
    epochs: usize,
    dir: PathBuf,
}

fn parse_args() -> Args {
    let mut a = Args {
        seed: 7,
        epochs: 5,
        dir: std::env::temp_dir().join(format!("siterec_chaos_serve_{}", std::process::id())),
    };
    let mut it = std::env::args().skip(1);
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next()
            .unwrap_or_else(|| panic!("missing value for {flag}"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => a.seed = need(&mut it, "--seed").parse().expect("--seed"),
            "--epochs" => a.epochs = need(&mut it, "--epochs").parse().expect("--epochs"),
            "--dir" => a.dir = PathBuf::from(need(&mut it, "--dir")),
            other => panic!("unknown flag {other}"),
        }
    }
    a
}

/// The sibling `siterec-serve` binary (both live in the same target dir).
fn serve_binary() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("binary has a parent dir");
    let name = format!("siterec-serve{}", std::env::consts::EXE_SUFFIX);
    let path = dir.join(&name);
    assert!(
        path.exists(),
        "expected sibling binary {} (build the siterec-serve package first)",
        path.display()
    );
    path
}

/// One `Connection: close` HTTP exchange; returns `(status, body)`.
fn http(addr: &str, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Spawn `siterec-serve run` and wait for its `listening on <addr>` line.
fn spawn_server(recipe: &str, ckpt: &Path, journal: Option<&Path>) -> (Child, String) {
    let mut cmd = Command::new(serve_binary());
    cmd.args([
        "run",
        "--recipe",
        recipe,
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "2",
    ])
    .arg("--ckpt")
    .arg(ckpt)
    .stdout(Stdio::piped())
    .stderr(Stdio::null())
    .env_remove("SITEREC_JOURNAL");
    if let Some(j) = journal {
        cmd.env("SITEREC_JOURNAL", j);
    }
    let mut child = cmd.spawn().expect("spawn siterec-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before listening")
            .expect("read server stdout");
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_string();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn score_query(region: usize, ty: usize, period: Option<Period>) -> String {
    let p = match period {
        Some(p) => format!("\"{}\"", p.label()),
        None => "null".to_string(),
    };
    format!("{{\"region\":{region},\"type\":{ty},\"period\":{p}}}\n")
}

/// Extract the score bits from a one-line `/v1/score` JSONL response.
fn response_bits(body: &str) -> u32 {
    let line = body.lines().next().expect("one response line");
    let v = obs::json::parse(line).expect("valid response JSON");
    let score = v
        .get("score")
        .and_then(|s| s.as_num())
        .expect("score field");
    (score as f32).to_bits()
}

fn main() {
    let args = parse_args();
    let _ = std::fs::remove_dir_all(&args.dir);
    std::fs::create_dir_all(&args.dir).expect("scratch dir");
    let ckpt = args.dir.join("ckpt");
    let recipe_str = format!("tiny:{}", args.seed);
    let recipe: Recipe = recipe_str.parse().unwrap();

    // 1. Train with durable checkpoints.
    println!(
        "chaos_serve: training {recipe_str} for {} epochs",
        args.epochs
    );
    let mut model = recipe.build_model(args.epochs);
    model
        .try_train_resumable(&CheckpointPolicy::new(&ckpt))
        .expect("training");

    // 2. Offline reference from a *fresh* model that adopts the checkpoint
    //    (the identical rebuild path the server uses).
    let mut reference = recipe.build_model(1);
    let restored = reference
        .restore_latest(&ckpt)
        .expect("read checkpoint dir")
        .expect("checkpoint present");
    assert_eq!(restored, args.epochs, "checkpoint is fully trained");
    let n_regions = {
        let store = siterec_serve::EmbeddingStore::new(reference.export_serving());
        store.n_regions()
    };
    let sweep: Vec<(usize, usize, Option<Period>)> = (0..n_regions)
        .map(|region| {
            let period = match region % 6 {
                5 => None,
                i => Some(Period::from_index(i)),
            };
            (region, region % 3, period)
        })
        .collect();
    let offline: Vec<u32> = sweep
        .iter()
        .map(|&(r, t, p)| reference.predict_for(&[(r, t)], p)[0].to_bits())
        .collect();

    // 3. First server: answer the first half of the sweep.
    let (mut child1, addr1) = spawn_server(&recipe_str, &ckpt, None);
    let half = sweep.len() / 2;
    for (i, &(r, t, p)) in sweep[..half].iter().enumerate() {
        let (status, body) =
            http(&addr1, "POST", "/v1/score", &score_query(r, t, p)).expect("pre-kill request");
        assert_eq!(status, 200, "pre-kill request {i} failed: {body}");
        assert_eq!(
            response_bits(&body),
            offline[i],
            "pre-kill score {i} (region {r}, type {t}, period {p:?}) diverged from offline"
        );
    }
    println!("chaos_serve: {half} pre-kill scores bit-identical to offline");

    // 4. SIGKILL mid-traffic: no shutdown handler, no journal flush.
    child1.kill().expect("SIGKILL server");
    let _ = child1.wait();
    assert!(
        http(&addr1, "GET", "/healthz", "").is_err(),
        "killed server still answering"
    );
    println!("chaos_serve: server SIGKILLed mid-traffic");

    // 5. Second server from the same checkpoint: the full sweep must be
    //    bit-identical to the offline reference.
    let journal = args.dir.join("serve_journal.jsonl");
    let (mut child2, addr2) = spawn_server(&recipe_str, &ckpt, Some(&journal));
    for (i, &(r, t, p)) in sweep.iter().enumerate() {
        let (status, body) =
            http(&addr2, "POST", "/v1/score", &score_query(r, t, p)).expect("post-resume request");
        assert_eq!(status, 200, "post-resume request {i} failed: {body}");
        assert_eq!(
            response_bits(&body),
            offline[i],
            "post-resume score {i} (region {r}, type {t}, period {p:?}) diverged from offline"
        );
    }
    println!(
        "chaos_serve: {} post-resume scores bit-identical to offline",
        sweep.len()
    );

    // 6. Graceful quit flushes the journal; validate it against the schema.
    let (status, _) = http(&addr2, "POST", "/admin/quit", "").expect("quit request");
    assert_eq!(status, 200, "quit failed");
    let exit = child2.wait().expect("wait for server");
    assert!(exit.success(), "server exited non-zero after quit");
    let text = std::fs::read_to_string(&journal).expect("journal written on quit");
    let stats = obs::validate_journal(&text)
        .unwrap_or_else(|e| panic!("journal failed schema validation: {e}"));
    assert!(
        stats.count("serve_request") >= sweep.len(),
        "journal missing serve_request records ({} < {})",
        stats.count("serve_request"),
        sweep.len()
    );
    assert_eq!(
        stats.count("serve_reload"),
        1,
        "journal missing the startup serve_reload record"
    );
    println!(
        "chaos_serve: journal valid ({} lines, {} serve_request records)",
        stats.lines,
        stats.count("serve_request")
    );

    let _ = std::fs::remove_dir_all(&args.dir);
    println!("chaos_serve: all assertions passed");
}
