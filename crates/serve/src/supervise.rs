//! The supervision layer: `siterec-serve supervise` runs N replica servers
//! as child processes, health-checks them, restarts crashed or hung
//! replicas under a deterministic seeded backoff schedule with a bounded
//! restart budget, and performs rolling zero-downtime restarts.
//!
//! # Topology
//!
//! ```text
//!               ┌── admin listener (/healthz status JSON, /admin/roll,
//!               │                   /admin/quit)
//!  supervisor ──┤
//!               │   tick loop: try_wait (crash) + /healthz probe (hang)
//!               │        │ restart w/ seeded backoff, bounded budget
//!               ├──▶ replica 0  (siterec-serve run, ephemeral port)
//!               ├──▶ replica 1
//!               └──▶ replica N-1
//! ```
//!
//! Replicas bind ephemeral ports (`127.0.0.1:0`) — the supervisor parses
//! each child's `listening on <addr>` line, so a restarted replica never
//! races a `TIME_WAIT` socket for its old port. Clients discover the
//! current replica addresses from the supervisor's own `/healthz` JSON,
//! which lists every replica's address, pid, health and restart count.
//!
//! Every lifecycle transition is journaled as a `supervisor_event` record
//! (`spawn` / `unhealthy` / `restart` / `drain` / `gave_up` / `roll`), so
//! `siterec-ops query --type supervisor_event` replays the whole history.
//!
//! # Determinism
//!
//! Replicas serve the same recipe + checkpoint, so any replica answers any
//! query with the same bits (the serving determinism contract). Restart
//! backoff is `min(100ms << attempt, 5s)` plus a jitter drawn from a
//! splitmix64 stream seeded by `(seed, replica, attempt)` — reproducible
//! across runs with the same seed.

use crate::http;
use siterec_obs::{self as obs, json};
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How often the supervisor's tick loop runs (crash detection latency).
const TICK: Duration = Duration::from_millis(50);

/// Backoff base doubles per attempt up to this cap.
const BACKOFF_CAP: Duration = Duration::from_secs(5);

/// Supervisor configuration (flags of `siterec-serve supervise`).
#[derive(Debug, Clone)]
pub struct SuperviseConfig {
    /// Admin bind address for the supervisor's own status endpoint
    /// (`--addr`, default `127.0.0.1:0`).
    pub addr: String,
    /// Number of replica children (`--replicas`, default 2).
    pub replicas: usize,
    /// Recipe each replica serves (`--recipe`, required).
    pub recipe: String,
    /// Checkpoint directory each replica adopts (`--ckpt`, required).
    pub ckpt: PathBuf,
    /// Seed of the deterministic backoff jitter (`--seed`, default 7).
    pub seed: u64,
    /// Restarts allowed per replica before giving up (`--restart-budget`,
    /// default 5). Rolling restarts do not count against it.
    pub restart_budget: u32,
    /// Pause between `/healthz` probes of one replica
    /// (`--health-interval-ms`, default 300).
    pub health_interval: Duration,
    /// Connect + read timeout of one probe (`--health-timeout-ms`,
    /// default 250).
    pub health_timeout: Duration,
    /// Consecutive failed probes before a replica is declared hung and
    /// killed (`--unhealthy-after`, default 3).
    pub unhealthy_after: u32,
    /// How long a drained replica gets to exit before SIGKILL
    /// (`--drain-wait-ms`, default 5000).
    pub drain_wait: Duration,
    /// How long a fresh replica gets to print its listen line and pass a
    /// probe (`--spawn-timeout-ms`, default 30000).
    pub spawn_timeout: Duration,
    /// Per-replica `--workers` override (`None` inherits the environment).
    pub workers: Option<usize>,
    /// Directory for per-replica journals (`--journal-dir`). Each spawn
    /// writes `replica-<i>-gen<g>.jsonl` so generations never clobber each
    /// other. `None` disables replica journals.
    pub journal_dir: Option<PathBuf>,
}

impl Default for SuperviseConfig {
    fn default() -> SuperviseConfig {
        SuperviseConfig {
            addr: "127.0.0.1:0".to_string(),
            replicas: 2,
            recipe: String::new(),
            ckpt: PathBuf::new(),
            seed: 7,
            restart_budget: 5,
            health_interval: Duration::from_millis(300),
            health_timeout: Duration::from_millis(250),
            unhealthy_after: 3,
            drain_wait: Duration::from_millis(5000),
            spawn_timeout: Duration::from_millis(30_000),
            workers: None,
            journal_dir: None,
        }
    }
}

/// splitmix64: the repo-standard seeded stream for deterministic jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic restart backoff: `min(100ms · 2^attempt, 5s)` plus up to
/// 100 ms of jitter drawn from `(seed, replica, attempt)`.
fn backoff(seed: u64, replica: usize, attempt: u32) -> Duration {
    let base = Duration::from_millis(100 << attempt.min(6)).min(BACKOFF_CAP);
    let jitter = splitmix64(seed ^ ((replica as u64) << 32) ^ u64::from(attempt)) % 100;
    base + Duration::from_millis(jitter)
}

/// One replica child and everything the supervisor tracks about it.
struct Replica {
    index: usize,
    child: Option<Child>,
    /// Resolved once the child prints `listening on <addr>`.
    addr: Option<SocketAddr>,
    /// Carries the parsed listen address from the stdout-reader thread.
    addr_rx: Option<mpsc::Receiver<SocketAddr>>,
    pid: u32,
    spawned_at: Instant,
    generation: u32,
    restarts: u32,
    gave_up: bool,
    healthy: bool,
    consecutive_failures: u32,
    last_probe: Instant,
    /// Set while the replica waits out its backoff before a respawn.
    next_spawn_at: Option<Instant>,
}

/// State shared with the admin-listener thread.
struct AdminShared {
    quit: AtomicBool,
    roll_requested: AtomicBool,
    rolls_completed: AtomicU64,
    /// Pre-rendered `/healthz` JSON, republished on every state change.
    status: Mutex<String>,
}

struct Supervisor {
    cfg: SuperviseConfig,
    replicas: Vec<Replica>,
    shared: Arc<AdminShared>,
    rolling: bool,
}

/// Journal one `supervisor_event` record and mirror it to the log stream.
fn event(kind: &str, replica: usize, detail: &str) {
    obs::record!(
        "supervisor_event",
        event = kind,
        replica = replica as u64,
        detail = detail,
    );
    obs::counter_add("supervise.events", 1);
    obs::olog!(Debug, "supervise: replica {replica} {kind}: {detail}");
}

/// Run the supervisor until `/admin/quit`. Prints `listening on <addr>`
/// (the supervisor's own admin endpoint) once ready — orchestrators parse
/// that line, then read replica addresses from `/healthz`.
pub fn run(cfg: SuperviseConfig) -> Result<(), String> {
    let listener =
        TcpListener::bind(&cfg.addr).map_err(|e| format!("supervisor bind failed: {e}"))?;
    let admin_addr = listener
        .local_addr()
        .map_err(|e| format!("supervisor addr: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("supervisor listener: {e}"))?;
    if let Some(dir) = &cfg.journal_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("journal dir {} unusable: {e}", dir.display()))?;
    }

    let shared = Arc::new(AdminShared {
        quit: AtomicBool::new(false),
        roll_requested: AtomicBool::new(false),
        rolls_completed: AtomicU64::new(0),
        status: Mutex::new("{\"status\":\"starting\"}".to_string()),
    });
    let admin = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("supervise-admin".to_string())
            .spawn(move || admin_loop(&shared, &listener))
            .map_err(|e| format!("admin thread: {e}"))?
    };

    let mut sup = Supervisor {
        replicas: Vec::new(),
        shared: shared.clone(),
        rolling: false,
        cfg,
    };
    for i in 0..sup.cfg.replicas.max(1) {
        let r = sup.spawn_replica(i, 0, 0)?;
        sup.replicas.push(r);
    }
    sup.publish_status();
    println!("listening on {admin_addr}");
    std::io::stdout().flush().ok();

    while !shared.quit.load(Ordering::SeqCst) {
        sup.tick();
        if shared.roll_requested.swap(false, Ordering::SeqCst) {
            sup.rolling_restart();
        }
        std::thread::sleep(TICK);
    }

    // Graceful teardown: drain every replica, give each the drain window to
    // exit 0 (flushing its journal), then hard-kill stragglers.
    for i in 0..sup.replicas.len() {
        sup.drain_replica(i);
    }
    for r in &mut sup.replicas {
        if let Some(mut child) = r.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    sup.publish_status();
    let _ = admin.join();
    Ok(())
}

/// The admin endpoint: `/healthz` serves the pre-rendered status JSON,
/// `/admin/roll` requests a rolling restart, `/admin/quit` stops the
/// supervisor (which drains its replicas on the way out).
fn admin_loop(shared: &AdminShared, listener: &TcpListener) {
    while !shared.quit.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(TICK);
                continue;
            }
            Err(_) => {
                std::thread::sleep(TICK);
                continue;
            }
        };
        let _ = serve_admin_connection(shared, stream);
    }
}

fn serve_admin_connection(shared: &AdminShared, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let Some(Ok(req)) = http::read_request(&mut reader)? else {
        return Ok(());
    };
    let (status, body) = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let snapshot = shared
                .status
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            (200, snapshot)
        }
        ("POST", "/admin/roll") => {
            shared.roll_requested.store(true, Ordering::SeqCst);
            (200, "{\"status\":\"rolling\"}".to_string())
        }
        ("POST", "/admin/quit") => {
            shared.quit.store(true, Ordering::SeqCst);
            (200, "{\"status\":\"stopping\"}".to_string())
        }
        (_, path) => (404, format!("{{\"error\":\"no route {path}\"}}")),
    };
    http::write_response(&mut out, status, &body, &[])
}

impl Supervisor {
    /// Spawn one replica child: `siterec-serve run` on an ephemeral port,
    /// stdout piped through a reader thread that reports the parsed listen
    /// address and then drains the pipe (so the child never blocks on a
    /// full pipe).
    fn spawn_replica(
        &self,
        index: usize,
        generation: u32,
        restarts: u32,
    ) -> Result<Replica, String> {
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let mut cmd = Command::new(exe);
        cmd.arg("run")
            .arg("--recipe")
            .arg(&self.cfg.recipe)
            .arg("--ckpt")
            .arg(&self.cfg.ckpt)
            .arg("--addr")
            .arg("127.0.0.1:0")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(w) = self.cfg.workers {
            cmd.arg("--workers").arg(w.to_string());
        }
        // Children must never inherit the supervisor's own journal path —
        // every replica would clobber the same file. Each generation gets
        // its own journal (or none).
        cmd.env_remove("SITEREC_JOURNAL");
        if let Some(dir) = &self.cfg.journal_dir {
            cmd.env(
                "SITEREC_JOURNAL",
                dir.join(format!("replica-{index}-gen{generation}.jsonl")),
            );
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("replica {index} spawn failed: {e}"))?;
        let pid = child.id();
        let stdout = child.stdout.take().expect("stdout piped");
        let (tx, rx) = mpsc::channel();
        std::thread::Builder::new()
            .name(format!("replica-{index}-stdout"))
            .spawn(move || {
                let mut lines = BufReader::new(stdout).lines();
                for line in &mut lines {
                    let Ok(line) = line else { return };
                    if let Some(addr) = line.strip_prefix("listening on ") {
                        if let Ok(addr) = addr.trim().parse::<SocketAddr>() {
                            let _ = tx.send(addr);
                        }
                        break;
                    }
                }
                // Drain the rest so the child never blocks writing stdout.
                for line in lines {
                    if line.is_err() {
                        return;
                    }
                }
            })
            .map_err(|e| format!("stdout reader: {e}"))?;
        event(
            "spawn",
            index,
            &format!("pid {pid} generation {generation}"),
        );
        Ok(Replica {
            index,
            child: Some(child),
            addr: None,
            addr_rx: Some(rx),
            pid,
            spawned_at: Instant::now(),
            generation,
            restarts,
            gave_up: false,
            healthy: false,
            consecutive_failures: 0,
            last_probe: Instant::now(),
            next_spawn_at: None,
        })
    }

    /// One pass over every replica: adopt freshly parsed listen addresses,
    /// detect crashes via `try_wait`, probe `/healthz` for hangs, restart
    /// under the backoff schedule, give up past the budget.
    fn tick(&mut self) {
        let mut changed = false;
        for i in 0..self.replicas.len() {
            changed |= self.tick_replica(i);
        }
        if changed {
            self.publish_status();
        }
    }

    fn tick_replica(&mut self, i: usize) -> bool {
        let mut changed = false;
        // Waiting out a backoff?
        if let Some(at) = self.replicas[i].next_spawn_at {
            if Instant::now() >= at {
                let (index, generation, restarts) = {
                    let r = &self.replicas[i];
                    (r.index, r.generation + 1, r.restarts)
                };
                match self.spawn_replica(index, generation, restarts) {
                    Ok(r) => self.replicas[i] = r,
                    Err(e) => {
                        // Spawn itself failed (fork limits, missing exe):
                        // burn one budget slot and back off again.
                        self.schedule_restart(i, &format!("spawn failed: {e}"));
                    }
                }
                changed = true;
            }
            return changed;
        }
        if self.replicas[i].gave_up {
            return false;
        }

        // Adopt the parsed listen address once the reader thread sends it.
        if self.replicas[i].addr.is_none() {
            if let Some(rx) = &self.replicas[i].addr_rx {
                if let Ok(addr) = rx.try_recv() {
                    self.replicas[i].addr = Some(addr);
                    self.replicas[i].addr_rx = None;
                    changed = true;
                }
            }
        }

        // Crash detection.
        let exited = self.replicas[i]
            .child
            .as_mut()
            .and_then(|c| c.try_wait().ok().flatten());
        if let Some(status) = exited {
            self.replicas[i].child = None;
            self.replicas[i].healthy = false;
            self.schedule_restart(i, &format!("exited with {status}"));
            return true;
        }

        // Startup deadline: no listen line yet.
        if self.replicas[i].addr.is_none() {
            if self.replicas[i].spawned_at.elapsed() > self.cfg.spawn_timeout {
                self.kill_child(i);
                self.schedule_restart(i, "no listen line before spawn timeout");
                return true;
            }
            return changed;
        }

        // Hang detection: periodic /healthz probe.
        if self.replicas[i].last_probe.elapsed() >= self.cfg.health_interval {
            self.replicas[i].last_probe = Instant::now();
            let addr = self.replicas[i].addr.expect("checked above");
            let ok = probe_healthz(addr, self.cfg.health_timeout);
            let r = &mut self.replicas[i];
            if ok {
                changed |= !r.healthy;
                r.healthy = true;
                r.consecutive_failures = 0;
            } else {
                r.healthy = false;
                r.consecutive_failures += 1;
                changed = true;
                if r.consecutive_failures >= self.cfg.unhealthy_after {
                    let n = r.consecutive_failures;
                    self.kill_child(i);
                    self.schedule_restart(i, &format!("{n} consecutive failed health checks"));
                }
            }
        }
        changed
    }

    fn kill_child(&mut self, i: usize) {
        if let Some(mut child) = self.replicas[i].child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.replicas[i].healthy = false;
    }

    /// Declare the replica unhealthy and either schedule a backoff respawn
    /// or give up when the restart budget is spent.
    fn schedule_restart(&mut self, i: usize, reason: &str) {
        let index = self.replicas[i].index;
        event("unhealthy", index, reason);
        let r = &mut self.replicas[i];
        if r.restarts >= self.cfg.restart_budget {
            r.gave_up = true;
            r.next_spawn_at = None;
            event(
                "gave_up",
                index,
                &format!("restart budget of {} exhausted", self.cfg.restart_budget),
            );
            return;
        }
        let attempt = r.restarts;
        r.restarts += 1;
        let wait = backoff(self.cfg.seed, index, attempt);
        r.next_spawn_at = Some(Instant::now() + wait);
        r.healthy = false;
        event(
            "restart",
            index,
            &format!("attempt {} backoff {}ms", attempt + 1, wait.as_millis()),
        );
    }

    /// Drain one replica and wait (up to `drain_wait`) for it to exit on
    /// its own — the graceful path flushes the replica's journal. Returns
    /// whether the child exited by itself.
    fn drain_replica(&mut self, i: usize) -> bool {
        let index = self.replicas[i].index;
        let Some(addr) = self.replicas[i].addr else {
            return false;
        };
        if self.replicas[i].child.is_none() {
            return false;
        }
        event("drain", index, &format!("draining {addr}"));
        let _ = http_post(addr, "/admin/drain", self.cfg.health_timeout);
        let deadline = Instant::now() + self.cfg.drain_wait;
        while Instant::now() < deadline {
            if let Some(child) = self.replicas[i].child.as_mut() {
                match child.try_wait() {
                    Ok(Some(_)) => {
                        self.replicas[i].child = None;
                        self.replicas[i].healthy = false;
                        return true;
                    }
                    Ok(None) => std::thread::sleep(TICK),
                    Err(_) => break,
                }
            }
        }
        self.kill_child(i);
        false
    }

    /// Rolling zero-downtime restart: for each replica in index order,
    /// drain it, respawn a fresh generation, wait for it to turn healthy,
    /// then move on. Rolling respawns never touch the restart budget —
    /// they are operator intent, not failures.
    fn rolling_restart(&mut self) {
        self.rolling = true;
        self.publish_status();
        for i in 0..self.replicas.len() {
            if self.replicas[i].gave_up || self.replicas[i].child.is_none() {
                continue;
            }
            self.drain_replica(i);
            let (index, generation, restarts) = {
                let r = &self.replicas[i];
                (r.index, r.generation + 1, r.restarts)
            };
            match self.spawn_replica(index, generation, restarts) {
                Ok(r) => self.replicas[i] = r,
                Err(e) => {
                    self.schedule_restart(i, &format!("roll respawn failed: {e}"));
                    continue;
                }
            }
            self.publish_status();
            // Wait until the fresh generation answers /healthz before
            // touching the next replica — that is the zero-downtime
            // guarantee (N-1 replicas stay live throughout).
            let deadline = Instant::now() + self.cfg.spawn_timeout;
            while Instant::now() < deadline {
                self.tick_replica(i);
                self.publish_status();
                if self.replicas[i].healthy {
                    break;
                }
                std::thread::sleep(TICK);
            }
        }
        self.rolling = false;
        self.shared.rolls_completed.fetch_add(1, Ordering::SeqCst);
        event(
            "roll",
            0,
            &format!(
                "rolling restart of {} replicas complete",
                self.replicas.len()
            ),
        );
        self.publish_status();
    }

    /// Re-render the `/healthz` JSON the admin thread serves.
    fn publish_status(&self) {
        let mut b = String::from("{\"status\":\"ok\",\"replicas\":[");
        for (i, r) in self.replicas.iter().enumerate() {
            if i > 0 {
                b.push(',');
            }
            b.push_str(&format!(
                "{{\"index\":{},\"addr\":{},\"pid\":{},\"healthy\":{},\"restarts\":{},\"gave_up\":{}}}",
                r.index,
                match r.addr {
                    Some(a) if r.child.is_some() => {
                        let mut s = String::new();
                        json::write_escaped(&mut s, &a.to_string());
                        s
                    }
                    _ => "null".to_string(),
                },
                r.pid,
                r.child.is_some() && r.healthy,
                r.restarts,
                r.gave_up,
            ));
        }
        b.push_str(&format!(
            "],\"rolling\":{},\"rolls_completed\":{}}}",
            self.rolling,
            self.shared.rolls_completed.load(Ordering::SeqCst)
        ));
        *self.shared.status.lock().unwrap_or_else(|e| e.into_inner()) = b;
    }
}

/// One `GET /healthz` probe with a connect timeout: any 200 counts as
/// healthy (a degraded replica still serves; a draining one is about to
/// exit, but it answers 200 and the exit is picked up by `try_wait`).
fn probe_healthz(addr: SocketAddr, timeout: Duration) -> bool {
    matches!(http_get(addr, "/healthz", timeout), Ok((200, _)))
}

fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> Result<(u16, String), String> {
    http_exchange(addr, "GET", path, timeout)
}

fn http_post(addr: SocketAddr, path: &str, timeout: Duration) -> Result<(u16, String), String> {
    http_exchange(addr, "POST", path, timeout)
}

/// Minimal one-shot HTTP exchange with connect + read timeouts (the
/// supervisor must never block on a hung replica — that is precisely the
/// failure it exists to detect).
fn http_exchange(
    addr: SocketAddr,
    method: &str,
    path: &str,
    timeout: Duration,
) -> Result<(u16, String), String> {
    let err = |e: std::io::Error| e.to_string();
    let mut stream = TcpStream::connect_timeout(&addr, timeout).map_err(err)?;
    stream.set_read_timeout(Some(timeout)).map_err(err)?;
    stream.set_write_timeout(Some(timeout)).map_err(err)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
    )
    .map_err(err)?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(err)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response: {raw:?}"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        for replica in 0..4 {
            for attempt in 0..10 {
                let a = backoff(42, replica, attempt);
                let b = backoff(42, replica, attempt);
                assert_eq!(a, b, "same (seed, replica, attempt) must agree");
                assert!(a >= Duration::from_millis(100));
                assert!(a <= BACKOFF_CAP + Duration::from_millis(100));
            }
        }
        // Different seeds shift the jitter.
        assert_ne!(backoff(1, 0, 3), backoff(2, 0, 3));
        // Doubling: attempt 2's base is 4x attempt 0's.
        assert!(backoff(7, 0, 2) >= Duration::from_millis(400));
    }
}
