//! A minimal, dependency-free HTTP/1.1 codec: just enough protocol for the
//! serving endpoints (request line + headers + `Content-Length` body in;
//! status line + headers + body out; HTTP/1.1 persistent connections with
//! `Connection: close` honored). Not a general web server — unsupported
//! constructs (chunked bodies, upgrades) are rejected with a clean 400.

use std::io::{self, BufRead, Write};

/// Largest accepted request body; longer bodies are rejected (413).
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased by the client.
    pub method: String,
    /// Request path including any query string (`/v1/score`).
    pub path: String,
    /// Lowercased `(name, value)` header pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Does the client ask to drop the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A request-parse failure, carrying the HTTP status the server should
/// answer with before closing the connection.
#[derive(Debug)]
pub struct ParseError {
    /// Response status code (400 or 413).
    pub status: u16,
    /// Human-readable reason included in the error body.
    pub message: String,
}

impl ParseError {
    fn bad(message: impl Into<String>) -> ParseError {
        ParseError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Read one request from a buffered connection.
///
/// Returns `Ok(None)` on clean EOF before any bytes (the client closed a
/// keep-alive connection), `Err(Ok(e))`-style parse failures as
/// `Ok(Some(Err(..)))` so the caller can answer with the right status, and
/// `Err` only for transport-level I/O failures.
#[allow(clippy::type_complexity)]
pub fn read_request<R: BufRead>(r: &mut R) -> io::Result<Option<Result<Request, ParseError>>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => {
            return Ok(Some(Err(ParseError::bad(format!(
                "bad request line {line:?}"
            )))))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(Some(Err(ParseError::bad(format!(
            "unsupported protocol {version:?}"
        )))));
    }
    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        if r.read_line(&mut h)? == 0 {
            return Ok(Some(Err(ParseError::bad("eof inside headers"))));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        match h.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
            None => return Ok(Some(Err(ParseError::bad(format!("bad header {h:?}"))))),
        }
    }
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Ok(Some(Err(ParseError::bad(
            "chunked transfer encoding is not supported",
        ))));
    }
    let len = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Ok(Some(Err(ParseError::bad(format!(
                    "bad content-length {v:?}"
                )))))
            }
        },
        None => 0,
    };
    if len > MAX_BODY_BYTES {
        return Ok(Some(Err(ParseError {
            status: 413,
            message: format!("body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"),
        })));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let body = match String::from_utf8(body) {
        Ok(s) => s,
        Err(_) => return Ok(Some(Err(ParseError::bad("body is not valid UTF-8")))),
    };
    Ok(Some(Ok(Request {
        method,
        path,
        headers,
        body,
    })))
}

/// Canonical reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Split a request path into `(route, query string)` at the first `?`.
/// The query string is `None` when the path has no `?`.
pub fn split_path_query(path: &str) -> (&str, Option<&str>) {
    match path.split_once('?') {
        Some((route, query)) => (route, Some(query)),
        None => (path, None),
    }
}

/// Write one response: status line, `Content-Type`/`Content-Length`, any
/// extra headers (e.g. `Retry-After` on a 503, `X-Request-Id` everywhere),
/// then the body. The default `application/json` content type is suppressed
/// when `extra_headers` carries its own `Content-Type` (the Prometheus
/// `/metrics` rendering is `text/plain`).
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    body: &str,
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    let has_ct = extra_headers
        .iter()
        .any(|(n, _)| n.eq_ignore_ascii_case("content-type"));
    write!(w, "HTTP/1.1 {status} {}\r\n", reason(status))?;
    if !has_ct {
        write!(w, "Content-Type: application/json\r\n")?;
    }
    write!(w, "Content-Length: {}\r\n", body.len())?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "\r\n{body}")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_post_with_body() {
        let raw = "POST /v1/score HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut BufReader::new(raw.as_bytes()))
            .unwrap()
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/score");
        assert_eq!(req.body, "hello");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_request(&mut BufReader::new(&b""[..]))
            .unwrap()
            .is_none());
    }

    #[test]
    fn garbage_is_a_400_not_an_io_error() {
        let raw = "NOT-HTTP\r\n\r\n";
        let err = read_request(&mut BufReader::new(raw.as_bytes()))
            .unwrap()
            .unwrap()
            .unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        let err = read_request(&mut BufReader::new(raw.as_bytes()))
            .unwrap()
            .unwrap()
            .unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn splits_path_and_query() {
        assert_eq!(split_path_query("/metrics"), ("/metrics", None));
        assert_eq!(
            split_path_query("/metrics?format=json"),
            ("/metrics", Some("format=json"))
        );
        assert_eq!(split_path_query("/a?b?c"), ("/a", Some("b?c")));
    }

    #[test]
    fn content_type_override_suppresses_default() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            "x",
            &[("Content-Type", "text/plain; version=0.0.4".to_string())],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert_eq!(text.matches("Content-Type:").count(), 1);
    }

    #[test]
    fn response_includes_extra_headers() {
        let mut out = Vec::new();
        write_response(&mut out, 503, "{}", &[("Retry-After", "1".to_string())]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
