//! Core recorder behavior: histogram bucketing, span nesting and buffering,
//! metric aggregation, and JSONL schema round-trip through the validator.
//!
//! The recorder is process-global, so every test takes `lock()` and resets
//! state first.

use siterec_obs as obs;
use std::sync::{Mutex, MutexGuard};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::set_enabled(true);
    obs::failpoint::disarm();
    guard
}

fn unlock(guard: MutexGuard<'static, ()>) {
    obs::reset();
    obs::set_enabled(false);
    obs::failpoint::disarm();
    drop(guard);
}

#[test]
fn histogram_bucketing_is_exact_power_of_two() {
    let g = lock();
    // Bucket 30 covers [1, 2): exact boundaries via exponent bits.
    assert_eq!(obs::Histogram::bucket_index(1.0), 30);
    assert_eq!(obs::Histogram::bucket_index(1.999), 30);
    assert_eq!(obs::Histogram::bucket_index(2.0), 31);
    assert_eq!(obs::Histogram::bucket_index(0.5), 29);
    // Underflow and non-positive values.
    assert_eq!(obs::Histogram::bucket_index(0.0), 0);
    assert_eq!(obs::Histogram::bucket_index(-3.0), 0);
    assert_eq!(obs::Histogram::bucket_index(f64::NAN), 0);
    assert_eq!(obs::Histogram::bucket_index(1e-300), 0);
    // Overflow clamps to the last bucket.
    assert_eq!(obs::Histogram::bucket_index(1e300), obs::HIST_BUCKETS - 1);
    assert_eq!(
        obs::Histogram::bucket_index(f64::INFINITY),
        obs::HIST_BUCKETS - 1
    );
    // Every bucket's bounds contain the values it receives.
    for i in 1..obs::HIST_BUCKETS - 1 {
        let (lo, hi) = obs::Histogram::bucket_bounds(i);
        assert_eq!(
            obs::Histogram::bucket_index(lo),
            i,
            "lo bound of bucket {i}"
        );
        let inside = lo * 1.5;
        assert_eq!(
            obs::Histogram::bucket_index(inside),
            i,
            "midpoint of bucket {i}"
        );
        assert!(hi > lo);
    }
    unlock(g);
}

#[test]
fn histogram_accumulates_summary_stats() {
    let g = lock();
    let mut h = obs::Histogram::default();
    for v in [0.5, 1.0, 1.5, 8.0] {
        h.record(v);
    }
    assert_eq!(h.count(), 4);
    assert!((h.sum() - 11.0).abs() < 1e-12);
    assert_eq!(h.min(), 0.5);
    assert_eq!(h.max(), 8.0);
    assert!((h.mean() - 2.75).abs() < 1e-12);
    // 0.5 -> bucket 29; 1.0, 1.5 -> bucket 30; 8.0 -> bucket 33.
    assert_eq!(h.nonzero_buckets(), vec![(29, 1), (30, 2), (33, 1)]);
    unlock(g);
}

#[test]
fn span_nesting_builds_paths_and_buffers_until_outermost_close() {
    let g = lock();
    {
        let _outer = obs::span!("outer", model = "demo");
        {
            let _inner = obs::span!("inner", step = 3u64);
            obs::event!("checkpoint", step = 3u64);
        }
        // Inner span closed but outer still open: nothing merged globally yet.
        assert_eq!(obs::snapshot().records, 0);
    }
    let snap = obs::snapshot();
    assert_eq!(
        snap.records, 3,
        "outer close flushes inner span, event, outer span"
    );

    let journal = obs::journal_to_string();
    let stats = obs::validate_journal(&journal).expect("journal validates");
    assert_eq!(stats.count("span"), 2);
    assert_eq!(stats.count("event"), 1);

    // Span paths reflect the nesting regardless of record order.
    let paths: Vec<String> = journal
        .lines()
        .filter_map(|l| siterec_obs::json::parse(l).ok())
        .filter_map(|v| v.get("path").and_then(|p| p.as_str().map(String::from)))
        .collect();
    assert!(paths.contains(&"outer".to_string()));
    assert!(paths.contains(&"outer/inner".to_string()));

    // Span aggregates keyed by name, with [model] suffix when present.
    let keys: Vec<&str> = snap.spans.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, vec!["inner", "outer[demo]"]);
    unlock(g);
}

#[test]
fn disabled_recorder_records_nothing() {
    let g = lock();
    obs::set_enabled(false);
    {
        let _span = obs::span!("ghost", epoch = 1u64);
        obs::event!("ghost_event");
        obs::counter_add("ghost.counter", 5);
        obs::hist_record("ghost.hist", 1.0);
        obs::gauge_set("ghost.gauge", 2.0);
    }
    obs::set_enabled(true);
    let snap = obs::snapshot();
    assert_eq!(snap.records, 0);
    assert!(snap.counters.is_empty());
    assert!(snap.hists.is_empty());
    assert!(snap.gauges.is_empty());
    unlock(g);
}

#[test]
fn metrics_aggregate_and_serialize() {
    let g = lock();
    obs::counter_add("eval.jobs", 2);
    obs::counter_add("eval.jobs", 3);
    obs::gauge_set("train.lr", 5e-3);
    obs::hist_record("train.grad_norm", 0.75);
    obs::hist_record("train.grad_norm", f64::NAN);
    obs::op_profile_add(
        "matmul",
        obs::OpProfile {
            calls: 10,
            forward_ns: 1_000,
            backward_ns: 2_000,
            elements: 640,
        },
    );
    obs::op_profile_add(
        "matmul",
        obs::OpProfile {
            calls: 5,
            forward_ns: 500,
            backward_ns: 700,
            elements: 320,
        },
    );

    let snap = obs::snapshot();
    assert_eq!(snap.counters, vec![("eval.jobs".to_string(), 5)]);
    let (_, op) = &snap.ops[0];
    assert_eq!(
        (op.calls, op.forward_ns, op.backward_ns, op.elements),
        (15, 1500, 2700, 960)
    );
    assert_eq!(snap.top_ops(1)[0].0, "matmul");

    // NaN observations survive JSON serialization (as strings) and the
    // journal still validates.
    let journal = obs::journal_to_string();
    let stats = obs::validate_journal(&journal).expect("journal validates");
    assert_eq!(stats.count("counter"), 1);
    assert_eq!(stats.count("gauge"), 1);
    assert_eq!(stats.count("histogram"), 1);
    assert_eq!(stats.count("op_profile"), 1);
    unlock(g);
}

#[test]
fn typed_records_roundtrip_through_validator() {
    let g = lock();
    obs::record!("run_start", name = "unit_test");
    obs::record!(
        "train_epoch",
        model = "O2-SiteRec",
        epoch = 4u64,
        loss = 0.25,
        recoveries = 0u64
    );
    obs::record!(
        "recovery",
        model = "O2-SiteRec",
        seed = 17u64,
        epoch = 9u64,
        attempt = 1u64,
        fault = "non-finite loss",
        rollback_to = 8u64,
        lr_before = 0.01,
        lr_after = 0.005
    );
    obs::record!(
        "job_failure",
        index = 3u64,
        attempts = 2u64,
        message = "panic: boom"
    );
    obs::record!(
        "train_error",
        model = "GCMC",
        epoch = 2u64,
        fault = "exploded"
    );
    obs::record!(
        "failpoint",
        name = "ckpt.write.fsync",
        mode = "short",
        hit = 2u64
    );
    obs::record!("serve_degraded", reason = "reload failed: boom");
    obs::record!(
        "serve_drain",
        completed = 12u64,
        refused = 3u64,
        abandoned = 0u64,
        dur_ns = 4567u64
    );
    obs::record!(
        "supervisor_event",
        event = "restart",
        replica = 1u64,
        detail = "attempt 2 backoff 400ms"
    );
    obs::record!("run_end", name = "unit_test", dur_ns = 12345u64);

    let journal = obs::journal_to_string();
    let stats = obs::validate_journal(&journal).expect("journal validates");
    assert_eq!(stats.lines, 10);
    for kind in [
        "run_start",
        "train_epoch",
        "recovery",
        "job_failure",
        "train_error",
        "failpoint",
        "serve_degraded",
        "serve_drain",
        "supervisor_event",
        "run_end",
    ] {
        assert_eq!(stats.count(kind), 1, "{kind}");
    }
    unlock(g);
}

#[test]
fn validator_rejects_schema_violations() {
    let g = lock();
    // Unknown type.
    let err = obs::validate_journal("{\"type\":\"mystery\"}").unwrap_err();
    assert!(err.contains("unknown record type"), "{err}");
    // Missing required field.
    let err = obs::validate_journal("{\"type\":\"job_failure\",\"index\":1}").unwrap_err();
    assert!(err.contains("missing required field"), "{err}");
    // Wrong field kind.
    let err = obs::validate_journal("{\"type\":\"event\",\"name\":42}").unwrap_err();
    assert!(err.contains("must be a string"), "{err}");
    // Invalid JSON, with a 1-based line number.
    let err = obs::validate_journal("{\"type\":\"event\",\"name\":\"ok\"}\nnot json").unwrap_err();
    assert!(err.starts_with("line 2:"), "{err}");
    // Missing type tag.
    let err = obs::validate_journal("{\"name\":\"ok\"}").unwrap_err();
    assert!(err.contains("missing string \"type\""), "{err}");
    // Failpoint record with a non-numeric hit count.
    let err = obs::validate_journal(
        "{\"type\":\"failpoint\",\"name\":\"x\",\"mode\":\"err\",\"hit\":\"two\"}",
    )
    .unwrap_err();
    assert!(err.contains("must be a number"), "{err}");
    // Degraded record without its reason.
    let err = obs::validate_journal("{\"type\":\"serve_degraded\"}").unwrap_err();
    assert!(err.contains("missing required field"), "{err}");
    // Drain record missing its abandoned count.
    let err = obs::validate_journal(
        "{\"type\":\"serve_drain\",\"completed\":1,\"refused\":0,\"dur_ns\":9}",
    )
    .unwrap_err();
    assert!(err.contains("missing required field"), "{err}");
    // Supervisor event with a non-numeric replica index.
    let err = obs::validate_journal(
        "{\"type\":\"supervisor_event\",\"event\":\"spawn\",\"replica\":\"one\",\"detail\":\"\"}",
    )
    .unwrap_err();
    assert!(err.contains("must be a number"), "{err}");
    unlock(g);
}

#[test]
fn validator_checks_serve_trace_fields() {
    let g = lock();
    // A complete record (extra fields allowed) validates.
    let good = "{\"type\":\"serve_trace\",\"request_id\":\"sr-00ab\",\"endpoint\":\"/v1/score\",\
                \"status\":200,\"parse_ns\":10,\"queue_ns\":20,\"batch_ns\":5,\"score_ns\":30,\
                \"serialize_ns\":5,\"total_ns\":90,\"extra\":\"ok\"}";
    let stats = obs::validate_journal(good).expect("complete serve_trace validates");
    assert_eq!(stats.count("serve_trace"), 1);
    // Every phase field is required — dropping any one is a schema error.
    for missing in [
        "request_id",
        "endpoint",
        "status",
        "parse_ns",
        "queue_ns",
        "batch_ns",
        "score_ns",
        "serialize_ns",
        "total_ns",
    ] {
        let v = obs::json::parse(good).unwrap();
        let obs::json::Json::Obj(fields) = v else {
            unreachable!()
        };
        let pruned =
            obs::json::Json::Obj(fields.into_iter().filter(|(k, _)| k != missing).collect());
        let err = obs::validate_journal(&pruned.render()).unwrap_err();
        assert!(
            err.contains("missing required field"),
            "dropping {missing} must fail: {err}"
        );
    }
    // Wrong kinds: a numeric request_id and a string phase are rejected.
    let err = obs::validate_journal(&good.replace("\"sr-00ab\"", "7")).unwrap_err();
    assert!(err.contains("must be a string"), "{err}");
    let err =
        obs::validate_journal(&good.replace("\"score_ns\":30", "\"score_ns\":\"30\"")).unwrap_err();
    assert!(err.contains("must be a number"), "{err}");
    unlock(g);
}

#[test]
fn failpoint_firing_is_deterministic_and_disarm_clears() {
    let g = lock();
    // `@2x2` fires on hits 2 and 3 exactly — every process replays the same
    // firing pattern from the same schedule.
    obs::failpoint::arm("det.test=err@2x2").unwrap();
    let fired: Vec<bool> = (0..5)
        .map(|_| obs::failpoint::check("det.test").is_some())
        .collect();
    assert_eq!(fired, [false, true, true, false, false]);
    assert_eq!(obs::failpoint::hits("det.test"), 5);
    // Unlisted names never fire, even while armed.
    assert!(obs::failpoint::check("det.other").is_none());
    // Each firing journaled one schema-valid `failpoint` record.
    let stats = obs::validate_journal(&obs::journal_to_string()).unwrap();
    assert_eq!(stats.count("failpoint"), 2);
    // Disarm restores the unarmed fast path: nothing fires, nothing counts.
    obs::failpoint::disarm();
    assert!(!obs::failpoint::armed());
    assert!(obs::failpoint::check("det.test").is_none());
    assert_eq!(obs::failpoint::hits("det.test"), 0);
    unlock(g);
}

#[test]
fn fault_seams_damage_writes_and_reads_as_specified() {
    let g = lock();
    let dir = std::env::temp_dir().join(format!("siterec_obs_seams_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let payload = b"0123456789abcdef".to_vec();

    // Write seam, `err`: the fault preempts the write entirely.
    obs::failpoint::arm("seam.w=err").unwrap();
    let p = dir.join("err.bin");
    assert!(obs::atomic_write_fp(&p, &payload, "seam.w").is_err());
    assert!(!p.exists(), "err fault must leave no file behind");

    // Write seam, `short`: a torn prefix lands at the destination AND the
    // caller sees an error — the retry/CRC layers above must cope.
    obs::failpoint::arm("seam.w=short").unwrap();
    let p = dir.join("short.bin");
    assert!(obs::atomic_write_fp(&p, &payload, "seam.w").is_err());
    assert_eq!(std::fs::read(&p).unwrap(), payload[..payload.len() / 2]);

    // Write seam, `corrupt`: the write "succeeds" with exactly one bit
    // flipped — only a downstream checksum can notice.
    obs::failpoint::arm("seam.w=corrupt").unwrap();
    let p = dir.join("corrupt.bin");
    obs::atomic_write_fp(&p, &payload, "seam.w").unwrap();
    let on_disk = std::fs::read(&p).unwrap();
    let diff: u32 = on_disk
        .iter()
        .zip(&payload)
        .map(|(a, b)| (a ^ b).count_ones())
        .sum();
    assert_eq!(diff, 1, "corrupt flips exactly one bit");

    // Read seam: short truncates to half, corrupt flips one bit, err errors.
    obs::failpoint::arm("seam.r=short").unwrap();
    let mut buf = payload.clone();
    obs::read_fault("seam.r", &mut buf).unwrap();
    assert_eq!(buf, payload[..payload.len() / 2]);
    obs::failpoint::arm("seam.r=corrupt").unwrap();
    let mut buf = payload.clone();
    obs::read_fault("seam.r", &mut buf).unwrap();
    assert_ne!(buf, payload);
    obs::failpoint::arm("seam.r=err").unwrap();
    let mut buf = payload.clone();
    assert!(obs::read_fault("seam.r", &mut buf).is_err());

    obs::failpoint::disarm();
    let _ = std::fs::remove_dir_all(&dir);
    unlock(g);
}

#[test]
fn journal_write_creates_validatable_file() {
    let g = lock();
    obs::record!("run_start", name = "file_test");
    obs::counter_add("file.counter", 1);
    let path = std::env::temp_dir().join("siterec_obs_core_journal_test.jsonl");
    let lines = obs::write_journal(&path).expect("journal written");
    assert_eq!(lines, 2);
    let text = std::fs::read_to_string(&path).unwrap();
    let stats = obs::validate_journal(&text).expect("written journal validates");
    assert_eq!(stats.lines, 2);
    let _ = std::fs::remove_file(&path);
    unlock(g);
}

#[test]
fn cross_thread_records_merge_at_span_close() {
    let g = lock();
    std::thread::scope(|s| {
        for i in 0..4u64 {
            s.spawn(move || {
                let _span = obs::span!("worker", index = i);
                obs::record!(
                    "job_failure",
                    index = i,
                    attempts = 1u64,
                    message = "synthetic"
                );
            });
        }
    });
    let journal = obs::journal_to_string();
    let stats = obs::validate_journal(&journal).expect("journal validates");
    assert_eq!(stats.count("span"), 4);
    assert_eq!(stats.count("job_failure"), 4);
    unlock(g);
}
