//! The JSONL run-journal: serialization of buffered records plus the
//! end-of-run metric summary, and schema validation for written journals.
//!
//! # Journal schema
//!
//! Every line is one JSON object with a `"type"` field. Known types and
//! their required fields (extra fields are always allowed):
//!
//! | type          | required fields                                              |
//! |---------------|--------------------------------------------------------------|
//! | `run_start`   | `name` (str)                                                 |
//! | `run_end`     | `name` (str), `dur_ns` (num)                                 |
//! | `span`        | `name` (str), `path` (str), `dur_ns` (num)                   |
//! | `event`       | `name` (str)                                                 |
//! | `counter`     | `name` (str), `value` (num)                                  |
//! | `gauge`       | `name` (str), `value` (num or str for non-finite)            |
//! | `histogram`   | `name` (str), `count`, `sum`, `min`, `max`, `buckets` (arr)  |
//! | `op_profile`  | `op` (str), `calls`, `forward_ns`, `backward_ns`, `elements` |
//! | `train_epoch` | `model` (str), `epoch` (num), `loss` (num or str)            |
//! | `recovery`    | `model` (str), `seed`, `epoch`, `attempt` (num), `fault` (str), `lr_before`, `lr_after` (num or str) |
//! | `train_error` | `model` (str), `epoch` (num), `fault` (str)                  |
//! | `job_failure` | `index` (num), `attempts` (num), `message` (str)             |
//! | `checkpoint_write` | `model` (str), `path` (str), `epoch` (num), `bytes` (num) |
//! | `checkpoint_corrupt` | `path` (str), `reason` (str)                          |
//! | `resume`      | `model` (str), `epoch` (num), `path` (str)                   |
//! | `bench_artifact` | `name` (str), `path` (str)                                |
//! | `serve_request` | `endpoint` (str), `status` (num), `n` (num), `dur_ns` (num) |
//! | `serve_reload` | `source` (str), `epoch` (num), `dur_ns` (num)              |
//! | `failpoint`   | `name` (str), `mode` (str), `hit` (num)                      |
//! | `serve_degraded` | `reason` (str)                                            |
//! | `serve_trace` | `request_id` (str), `endpoint` (str), `status`, `parse_ns`, `queue_ns`, `batch_ns`, `score_ns`, `serialize_ns`, `total_ns` (num) |
//! | `serve_drain` | `completed` (num), `refused` (num), `abandoned` (num), `dur_ns` (num) |
//! | `supervisor_event` | `event` (str), `replica` (num), `detail` (str)           |
//!
//! Unknown types fail validation: the schema is closed so that a typo in an
//! emitting call site is caught by CI rather than silently ignored.

use crate::json::{self, Json};
use crate::recorder::{self, Record, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Serialize the current recorder state as JSONL: all buffered records in
/// order, followed by one `counter`/`gauge`/`histogram`/`op_profile` line
/// per aggregate.
pub fn journal_to_string() -> String {
    let g = recorder::inner();
    let mut out = String::new();
    for rec in &g.records {
        out.push_str(&rec.to_json());
        out.push('\n');
    }
    for (name, v) in &g.counters {
        let rec = Record {
            kind: "counter",
            fields: vec![
                ("name", Value::Str(name.to_string())),
                ("value", Value::UInt(*v)),
            ],
        };
        out.push_str(&rec.to_json());
        out.push('\n');
    }
    for (name, v) in &g.gauges {
        let rec = Record {
            kind: "gauge",
            fields: vec![
                ("name", Value::Str(name.to_string())),
                ("value", Value::Float(*v)),
            ],
        };
        out.push_str(&rec.to_json());
        out.push('\n');
    }
    for (name, h) in &g.hists {
        // `buckets` is a flat array of [bucket_index, count] pairs; it is
        // hand-rendered here because Record fields are scalar-only.
        let mut line = String::new();
        line.push_str("{\"type\":\"histogram\",\"name\":");
        json::write_escaped(&mut line, name);
        let _ = write!(line, ",\"count\":{}", h.count());
        line.push_str(",\"sum\":");
        json::write_f64(&mut line, h.sum());
        line.push_str(",\"min\":");
        json::write_f64(&mut line, if h.count() == 0 { 0.0 } else { h.min() });
        line.push_str(",\"max\":");
        json::write_f64(&mut line, if h.count() == 0 { 0.0 } else { h.max() });
        line.push_str(",\"buckets\":[");
        for (i, (bucket, count)) in h.nonzero_buckets().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "[{bucket},{count}]");
        }
        line.push_str("]}");
        out.push_str(&line);
        out.push('\n');
    }
    for (kind, op) in &g.ops {
        let rec = Record {
            kind: "op_profile",
            fields: vec![
                ("op", Value::Str(kind.to_string())),
                ("calls", Value::UInt(op.calls)),
                ("forward_ns", Value::UInt(op.forward_ns)),
                ("backward_ns", Value::UInt(op.backward_ns)),
                ("elements", Value::UInt(op.elements)),
            ],
        };
        out.push_str(&rec.to_json());
        out.push('\n');
    }
    out
}

/// Write the journal (see [`journal_to_string`]) to `path` atomically (via
/// [`crate::atomic_write_fp`], so a crash mid-write never leaves a torn
/// journal) behind the `journal.append` failpoint seam with bounded retry,
/// returning the number of lines written.
pub fn write_journal(path: &Path) -> io::Result<usize> {
    let mut lines = 0;
    crate::retry_io("write_journal", crate::RetryCfg::from_env(), || {
        // Re-serialized on every attempt: a `journal.append` failpoint
        // firing lands a `failpoint` record in the recorder, and the
        // retried write must include it or the journal under-reports the
        // very fault it just survived.
        let text = journal_to_string();
        lines = text.lines().count();
        crate::fsio::atomic_write_fp(path, text.as_bytes(), "journal.append")
    })?;
    Ok(lines)
}

/// Per-type line counts from a validated journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Number of valid lines per record type.
    pub by_type: BTreeMap<String, usize>,
    /// Total number of lines.
    pub lines: usize,
}

impl JournalStats {
    /// The number of records of the given type.
    pub fn count(&self, kind: &str) -> usize {
        self.by_type.get(kind).copied().unwrap_or(0)
    }
}

#[derive(Clone, Copy)]
enum Kind {
    Str,
    Num,
    /// Number, or string for values JSON cannot represent (NaN/inf).
    NumOrStr,
    Arr,
}

impl Kind {
    fn matches(self, v: &Json) -> bool {
        match self {
            Kind::Str => matches!(v, Json::Str(_)),
            Kind::Num => matches!(v, Json::Num(_)),
            Kind::NumOrStr => matches!(v, Json::Num(_) | Json::Str(_)),
            Kind::Arr => matches!(v, Json::Arr(_)),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Kind::Str => "string",
            Kind::Num => "number",
            Kind::NumOrStr => "number-or-string",
            Kind::Arr => "array",
        }
    }
}

const SCHEMA: &[(&str, &[(&str, Kind)])] = &[
    ("run_start", &[("name", Kind::Str)]),
    ("run_end", &[("name", Kind::Str), ("dur_ns", Kind::Num)]),
    (
        "span",
        &[
            ("name", Kind::Str),
            ("path", Kind::Str),
            ("dur_ns", Kind::Num),
        ],
    ),
    ("event", &[("name", Kind::Str)]),
    ("counter", &[("name", Kind::Str), ("value", Kind::Num)]),
    ("gauge", &[("name", Kind::Str), ("value", Kind::NumOrStr)]),
    (
        "histogram",
        &[
            ("name", Kind::Str),
            ("count", Kind::Num),
            ("sum", Kind::NumOrStr),
            ("min", Kind::NumOrStr),
            ("max", Kind::NumOrStr),
            ("buckets", Kind::Arr),
        ],
    ),
    (
        "op_profile",
        &[
            ("op", Kind::Str),
            ("calls", Kind::Num),
            ("forward_ns", Kind::Num),
            ("backward_ns", Kind::Num),
            ("elements", Kind::Num),
        ],
    ),
    (
        "train_epoch",
        &[
            ("model", Kind::Str),
            ("epoch", Kind::Num),
            ("loss", Kind::NumOrStr),
        ],
    ),
    (
        "recovery",
        &[
            ("model", Kind::Str),
            ("seed", Kind::Num),
            ("epoch", Kind::Num),
            ("attempt", Kind::Num),
            ("fault", Kind::Str),
            ("lr_before", Kind::NumOrStr),
            ("lr_after", Kind::NumOrStr),
        ],
    ),
    (
        "train_error",
        &[
            ("model", Kind::Str),
            ("epoch", Kind::Num),
            ("fault", Kind::Str),
        ],
    ),
    (
        "job_failure",
        &[
            ("index", Kind::Num),
            ("attempts", Kind::Num),
            ("message", Kind::Str),
        ],
    ),
    (
        "checkpoint_write",
        &[
            ("model", Kind::Str),
            ("path", Kind::Str),
            ("epoch", Kind::Num),
            ("bytes", Kind::Num),
        ],
    ),
    (
        "checkpoint_corrupt",
        &[("path", Kind::Str), ("reason", Kind::Str)],
    ),
    (
        "resume",
        &[
            ("model", Kind::Str),
            ("epoch", Kind::Num),
            ("path", Kind::Str),
        ],
    ),
    (
        "bench_artifact",
        &[("name", Kind::Str), ("path", Kind::Str)],
    ),
    (
        "serve_request",
        &[
            ("endpoint", Kind::Str),
            ("status", Kind::Num),
            ("n", Kind::Num),
            ("dur_ns", Kind::Num),
        ],
    ),
    (
        "serve_reload",
        &[
            ("source", Kind::Str),
            ("epoch", Kind::Num),
            ("dur_ns", Kind::Num),
        ],
    ),
    (
        "failpoint",
        &[("name", Kind::Str), ("mode", Kind::Str), ("hit", Kind::Num)],
    ),
    ("serve_degraded", &[("reason", Kind::Str)]),
    (
        "serve_trace",
        &[
            ("request_id", Kind::Str),
            ("endpoint", Kind::Str),
            ("status", Kind::Num),
            ("parse_ns", Kind::Num),
            ("queue_ns", Kind::Num),
            ("batch_ns", Kind::Num),
            ("score_ns", Kind::Num),
            ("serialize_ns", Kind::Num),
            ("total_ns", Kind::Num),
        ],
    ),
    (
        "serve_drain",
        &[
            ("completed", Kind::Num),
            ("refused", Kind::Num),
            ("abandoned", Kind::Num),
            ("dur_ns", Kind::Num),
        ],
    ),
    (
        "supervisor_event",
        &[
            ("event", Kind::Str),
            ("replica", Kind::Num),
            ("detail", Kind::Str),
        ],
    ),
];

/// Validate JSONL journal text against the schema in the module docs.
///
/// Every line must parse as a JSON object with a known `"type"` and all of
/// that type's required fields present with the right kinds. Returns
/// per-type counts on success; the first offending line (1-based) on error.
pub fn validate_journal(text: &str) -> Result<JournalStats, String> {
    let mut stats = JournalStats::default();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            return Err(format!("line {lineno}: empty line"));
        }
        let value = json::parse(line).map_err(|e| format!("line {lineno}: invalid JSON: {e}"))?;
        if !matches!(value, Json::Obj(_)) {
            return Err(format!("line {lineno}: not a JSON object"));
        }
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string \"type\" field"))?;
        let Some((_, required)) = SCHEMA.iter().find(|(t, _)| *t == kind) else {
            return Err(format!("line {lineno}: unknown record type {kind:?}"));
        };
        for (field, want) in *required {
            match value.get(field) {
                None => {
                    return Err(format!(
                        "line {lineno}: {kind} record missing required field {field:?}"
                    ));
                }
                Some(v) if !want.matches(v) => {
                    return Err(format!(
                        "line {lineno}: {kind} field {field:?} must be a {}",
                        want.name()
                    ));
                }
                Some(_) => {}
            }
        }
        *stats.by_type.entry(kind.to_string()).or_insert(0) += 1;
        stats.lines += 1;
    }
    Ok(stats)
}
