//! The global recorder: spans, events, counters, gauges, histograms and
//! per-op profiles, all behind two cheap atomic switches (`enabled`,
//! `profiling`).
//!
//! # Determinism contract
//!
//! Instrumentation only *observes*: nothing in this module feeds back into
//! model computation, RNG state, or thread scheduling, so model outputs and
//! recovery traces are bitwise identical with the recorder on or off and at
//! any thread count. Each thread buffers its records locally and merges them
//! into the global store in one step when its outermost span closes, so a
//! span's records always appear contiguously; the interleaving *between*
//! top-level spans from different threads follows wall-clock completion
//! order and is the one non-deterministic aspect of the journal (content is
//! deterministic, line order across threads is not).

use crate::json;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Cap on buffered journal records; beyond this, records are counted as
/// dropped rather than growing memory without bound.
const MAX_RECORDS: usize = 1 << 20;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Verbosity of human-readable stderr logging (`SITEREC_LOG`).
///
/// Library crates print nothing at [`LogLevel::Off`]; bench binaries keep
/// their stdout tables at every level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LogLevel {
    /// No stderr logging from library crates (the default).
    Off = 0,
    /// End-of-run summaries and coarse progress lines.
    Summary = 1,
    /// Per-stage diagnostics (dataset generation, graph builds, eval cells).
    Debug = 2,
}

impl LogLevel {
    fn from_u8(v: u8) -> LogLevel {
        match v {
            1 => LogLevel::Summary,
            2 => LogLevel::Debug,
            _ => LogLevel::Off,
        }
    }
}

struct Config {
    enabled: AtomicBool,
    profiling: AtomicBool,
    log: AtomicU8,
    journal: Option<PathBuf>,
}

impl Config {
    fn from_env() -> Config {
        let journal = std::env::var_os("SITEREC_JOURNAL")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        let profile_env = std::env::var("SITEREC_PROFILE").is_ok_and(|v| v == "1");
        let log = match std::env::var("SITEREC_LOG").as_deref() {
            Ok("summary") => LogLevel::Summary,
            Ok("debug") => LogLevel::Debug,
            _ => LogLevel::Off,
        };
        // Any observable output (journal, profile, or stderr summaries)
        // requires record accumulation.
        let enabled = journal.is_some() || profile_env || log != LogLevel::Off;
        Config {
            enabled: AtomicBool::new(enabled),
            profiling: AtomicBool::new(journal.is_some() || profile_env),
            log: AtomicU8::new(log as u8),
            journal,
        }
    }
}

fn config() -> &'static Config {
    static CONFIG: OnceLock<Config> = OnceLock::new();
    CONFIG.get_or_init(Config::from_env)
}

/// The process-wide timestamp origin: every span's `start_ns` is an offset
/// from this instant, so spans from different threads share one timeline
/// (which is what lets the Chrome-trace exporter lay them out side by side).
pub(crate) fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// A small, stable per-thread integer identifying the recording thread in
/// span records (`tid`). Assigned on first use in thread-creation order;
/// purely observational (never feeds back into scheduling or computation).
pub(crate) fn thread_ordinal() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Is the recorder accumulating records? This is the one check every
/// instrumentation site performs first; when `false` the cost of an
/// instrumented call site is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    config().enabled.load(Ordering::Relaxed)
}

/// Turn record accumulation on or off (overrides the env-derived default;
/// used by tests and the bench wrapper).
pub fn set_enabled(on: bool) {
    config().enabled.store(on, Ordering::Relaxed);
}

/// Is opt-in per-op tape profiling requested? Checked once per `Graph`
/// construction, not per op.
#[inline]
pub fn profiling_enabled() -> bool {
    config().profiling.load(Ordering::Relaxed)
}

/// Turn per-op tape profiling on or off.
pub fn set_profiling(on: bool) {
    config().profiling.store(on, Ordering::Relaxed);
}

/// Current stderr verbosity.
#[inline]
pub fn log_level() -> LogLevel {
    LogLevel::from_u8(config().log.load(Ordering::Relaxed))
}

/// Override the stderr verbosity (normally set via `SITEREC_LOG`).
pub fn set_log_level(level: LogLevel) {
    config().log.store(level as u8, Ordering::Relaxed);
}

/// Would a message at `level` be printed?
#[inline]
pub fn log_enabled(level: LogLevel) -> bool {
    level != LogLevel::Off && log_level() >= level
}

/// Print one log line to stderr with the `[siterec]` prefix. Call sites go
/// through [`crate::olog!`], which performs the level check first.
pub fn log_line(args: std::fmt::Arguments<'_>) {
    eprintln!("[siterec] {args}");
}

/// The journal path from `SITEREC_JOURNAL`, if set at process start.
pub fn journal_path() -> Option<&'static Path> {
    config().journal.as_deref()
}

// ---------------------------------------------------------------------------
// Values and records
// ---------------------------------------------------------------------------

/// A structured field value attached to spans, events and journal records.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (seeds, counts; serialized at full precision).
    UInt(u64),
    /// Floating-point (non-finite values serialize as JSON strings).
    Float(f64),
    /// Text.
    Str(String),
    /// Boolean.
    Bool(bool),
}

macro_rules! value_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::$variant(v as $conv) }
        })*
    };
}

value_from!(
    i32 => Int as i64,
    i64 => Int as i64,
    u32 => UInt as u64,
    u64 => UInt as u64,
    usize => UInt as u64,
    f32 => Float as f64,
    f64 => Float as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Float(v) => json::write_f64(out, *v),
            Value::Str(s) => json::write_escaped(out, s),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
}

/// One journal record: a `type` tag plus flat key-value fields.
#[derive(Debug, Clone)]
pub struct Record {
    /// The record type (`"span"`, `"event"`, `"train_epoch"`, ...).
    pub kind: &'static str,
    /// Flat key-value payload, serialized in insertion order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Record {
    /// Serialize as a single JSON object (one journal line, no newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"type\":");
        json::write_escaped(&mut out, self.kind);
        for (k, v) in &self.fields {
            out.push(',');
            json::write_escaped(&mut out, k);
            out.push(':');
            v.write_json(&mut out);
        }
        out.push('}');
        out
    }

    fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Number of histogram buckets (fixed, so summaries are reproducible).
pub const HIST_BUCKETS: usize = 64;

/// Exponent offset: bucket `i` covers `[2^(i-OFFSET), 2^(i-OFFSET+1))`,
/// i.e. bucket 30 covers `[1, 2)`. Values at or below `2^-30` (and all
/// non-positive values) land in bucket 0; values at or above `2^34` land
/// in bucket 63.
const HIST_EXP_OFFSET: i32 = 30;

/// A fixed-bucket log2 histogram. Bucket boundaries are powers of two
/// derived from the value's exponent bits, so bucketing is exact integer
/// math — identical on every run and platform.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// The bucket index a value falls into.
    pub fn bucket_index(v: f64) -> usize {
        if v <= 0.0 || !v.is_finite() {
            // Non-positive, NaN: underflow bucket. +inf overflows below.
            return if v == f64::INFINITY {
                HIST_BUCKETS - 1
            } else {
                0
            };
        }
        // Exact exponent extraction; subnormals have biased exponent 0 and
        // clamp into bucket 0 along with everything below 2^-30.
        let biased = ((v.to_bits() >> 52) & 0x7ff) as i32;
        let exp = biased - 1023;
        (exp + HIST_EXP_OFFSET).clamp(0, HIST_BUCKETS as i32 - 1) as usize
    }

    /// The `[lo, hi)` value range of bucket `i` (bucket 0 starts at 0).
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        let hi = 2f64.powi(i as i32 - HIST_EXP_OFFSET + 1);
        let lo = if i == 0 {
            0.0
        } else {
            2f64.powi(i as i32 - HIST_EXP_OFFSET)
        };
        (lo, hi)
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the log2 buckets:
    /// walk the cumulative counts to the bucket holding the `ceil(q·count)`-th
    /// observation and report that bucket's upper bound, clamped to the exact
    /// observed `[min, max]`. The estimate is conservative (an upper bound
    /// within one power of two) and, being pure integer bucket math, is
    /// identical across runs and platforms. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = Self::bucket_bounds(i);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(bucket_index, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

/// Aggregated per-op-kind tape profile (forward and backward passes).
#[derive(Debug, Clone, Copy, Default)]
pub struct OpProfile {
    /// Forward executions of this op kind.
    pub calls: u64,
    /// Total wall time attributed to forward execution, in nanoseconds.
    pub forward_ns: u64,
    /// Total wall time attributed to backward execution, in nanoseconds.
    pub backward_ns: u64,
    /// Total output elements produced across all calls.
    pub elements: u64,
}

/// Aggregated timing for one span name (optionally split by `model` field).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanAgg {
    /// Number of spans closed under this key.
    pub count: u64,
    /// Total wall time across those spans, in nanoseconds.
    pub total_ns: u64,
}

#[derive(Default)]
pub(crate) struct Inner {
    pub(crate) records: Vec<Record>,
    pub(crate) dropped: usize,
    pub(crate) counters: BTreeMap<&'static str, u64>,
    pub(crate) gauges: BTreeMap<&'static str, f64>,
    pub(crate) hists: BTreeMap<&'static str, Histogram>,
    pub(crate) ops: BTreeMap<&'static str, OpProfile>,
    pub(crate) span_aggs: BTreeMap<String, SpanAgg>,
}

impl Inner {
    fn push_record(&mut self, rec: Record) {
        if rec.kind == "span" {
            let name = match rec.field("name") {
                Some(Value::Str(s)) => s.clone(),
                _ => String::new(),
            };
            let key = match rec.field("model") {
                Some(Value::Str(m)) => format!("{name}[{m}]"),
                _ => name,
            };
            let dur = match rec.field("dur_ns") {
                Some(Value::UInt(ns)) => *ns,
                _ => 0,
            };
            let agg = self.span_aggs.entry(key).or_default();
            agg.count += 1;
            agg.total_ns += dur;
        }
        if self.records.len() >= MAX_RECORDS {
            self.dropped += 1;
        } else {
            self.records.push(rec);
        }
    }
}

static INNER: Mutex<Inner> = Mutex::new(Inner {
    records: Vec::new(),
    dropped: 0,
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    hists: BTreeMap::new(),
    ops: BTreeMap::new(),
    span_aggs: BTreeMap::new(),
});

pub(crate) fn inner() -> MutexGuard<'static, Inner> {
    // Survive poisoning: panics are expected under the resilient eval
    // harness and must not take observability down with them.
    INNER.lock().unwrap_or_else(|e| e.into_inner())
}

/// Clear all recorded state (records, metrics, profiles). Used by tests and
/// by the bench wrapper at run start.
pub fn reset() {
    let mut g = inner();
    *g = Inner::default();
}

// ---------------------------------------------------------------------------
// Thread-local span stack and record buffer
// ---------------------------------------------------------------------------

struct Frame {
    name: &'static str,
    path: String,
    fields: Vec<(&'static str, Value)>,
    start: Instant,
    /// Offset from [`process_epoch`], stamped at entry so the Chrome-trace
    /// exporter can place the span on the shared process timeline.
    start_ns: u64,
}

#[derive(Default)]
struct ThreadState {
    stack: Vec<Frame>,
    buf: Vec<Record>,
}

thread_local! {
    static TLS: std::cell::RefCell<ThreadState> = std::cell::RefCell::new(ThreadState::default());
}

/// RAII guard for an open span; the span record is emitted (and, for an
/// outermost span, the thread's buffered records are merged into the global
/// store) when the guard drops.
#[must_use = "a span closes when its guard drops; bind it to a named variable"]
pub struct SpanGuard {
    active: bool,
}

impl SpanGuard {
    /// Open a span. Prefer the [`crate::span!`] macro, which skips all
    /// argument evaluation when the recorder is disabled.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, Value)>) -> SpanGuard {
        let epoch = process_epoch();
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            let path = match t.stack.last() {
                Some(parent) => format!("{}/{}", parent.path, name),
                None => name.to_string(),
            };
            t.stack.push(Frame {
                name,
                path,
                fields,
                start: Instant::now(),
                start_ns: epoch.elapsed().as_nanos() as u64,
            });
        });
        SpanGuard { active: true }
    }

    /// A no-op guard, returned by [`crate::span!`] when disabled.
    pub fn disabled() -> SpanGuard {
        SpanGuard { active: false }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            let Some(frame) = t.stack.pop() else { return };
            let dur_ns = frame.start.elapsed().as_nanos() as u64;
            let mut fields: Vec<(&'static str, Value)> = Vec::with_capacity(frame.fields.len() + 5);
            fields.push(("name", Value::Str(frame.name.to_string())));
            fields.push(("path", Value::Str(frame.path)));
            fields.extend(frame.fields);
            fields.push(("start_ns", Value::UInt(frame.start_ns)));
            fields.push(("tid", Value::UInt(thread_ordinal())));
            fields.push(("dur_ns", Value::UInt(dur_ns)));
            t.buf.push(Record {
                kind: "span",
                fields,
            });
            if t.stack.is_empty() {
                let batch: Vec<Record> = t.buf.drain(..).collect();
                drop(t);
                let mut g = inner();
                for rec in batch {
                    g.push_record(rec);
                }
            }
        });
    }
}

/// Emit a typed journal record (e.g. `"train_epoch"`, `"recovery"`,
/// `"job_failure"`). Buffers locally while a span is open on this thread;
/// otherwise appends to the global store directly. Call sites should go
/// through [`crate::record!`], which checks [`enabled`] first.
pub fn record_fields(kind: &'static str, fields: Vec<(&'static str, Value)>) {
    let rec = Record { kind, fields };
    let buffered = TLS.with(|t| {
        let mut t = t.borrow_mut();
        if t.stack.is_empty() {
            false
        } else {
            t.buf.push(rec.clone());
            true
        }
    });
    if !buffered {
        inner().push_record(rec);
    }
}

/// Emit a generic named event record. Call sites should go through
/// [`crate::event!`], which checks [`enabled`] first.
pub fn event_fields(name: &'static str, mut fields: Vec<(&'static str, Value)>) {
    fields.insert(0, ("name", Value::Str(name.to_string())));
    record_fields("event", fields);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Add `n` to a named counter. No-op when the recorder is disabled.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if enabled() {
        *inner().counters.entry(name).or_insert(0) += n;
    }
}

/// Set a named gauge to its latest value. No-op when disabled.
#[inline]
pub fn gauge_set(name: &'static str, v: f64) {
    if enabled() {
        inner().gauges.insert(name, v);
    }
}

/// Record one observation into a named histogram. No-op when disabled.
#[inline]
pub fn hist_record(name: &'static str, v: f64) {
    if enabled() {
        inner().hists.entry(name).or_default().record(v);
    }
}

/// Merge a per-op profile sample (from a dropped tape) into the global
/// per-op-kind aggregate. No-op when disabled.
pub fn op_profile_add(kind: &'static str, sample: OpProfile) {
    if enabled() {
        let mut g = inner();
        let agg = g.ops.entry(kind).or_default();
        agg.calls += sample.calls;
        agg.forward_ns += sample.forward_ns;
        agg.backward_ns += sample.backward_ns;
        agg.elements += sample.elements;
    }
}

// ---------------------------------------------------------------------------
// Snapshot & summary
// ---------------------------------------------------------------------------

/// A point-in-time copy of all aggregated state, for summaries, profile
/// artifacts and tests.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms by name.
    pub hists: Vec<(String, Histogram)>,
    /// Per-op-kind tape profiles.
    pub ops: Vec<(String, OpProfile)>,
    /// Span aggregates keyed by `name` or `name[model]`.
    pub spans: Vec<(String, SpanAgg)>,
    /// Number of buffered journal records.
    pub records: usize,
    /// Records dropped after hitting the in-memory cap.
    pub dropped: usize,
}

/// Take a snapshot of all aggregated state.
pub fn snapshot() -> Snapshot {
    let g = inner();
    Snapshot {
        counters: g
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
        gauges: g.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        hists: g
            .hists
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
        ops: g.ops.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        spans: g.span_aggs.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        records: g.records.len(),
        dropped: g.dropped,
    }
}

impl Snapshot {
    /// The top-`k` op kinds by total (forward + backward) wall time.
    pub fn top_ops(&self, k: usize) -> Vec<(String, OpProfile)> {
        let mut ops = self.ops.clone();
        ops.sort_by(|a, b| {
            let ta = a.1.forward_ns + a.1.backward_ns;
            let tb = b.1.forward_ns + b.1.backward_ns;
            tb.cmp(&ta).then_with(|| a.0.cmp(&b.0))
        });
        ops.truncate(k);
        ops
    }

    /// Render the human-readable end-of-run summary.
    pub fn render(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::new();
        let _ = writeln!(out, "── observability summary ──");
        if !self.spans.is_empty() {
            let _ = writeln!(out, "spans (count · total):");
            for (name, agg) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {name:<40} {:>6} · {:>10.1} ms",
                    agg.count,
                    ms(agg.total_ns)
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<40} {v:.6}");
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(out, "histograms (count · mean · max):");
            for (name, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {name:<40} {:>8} · {:>12.6} · {:>12.6}",
                    h.count(),
                    h.mean(),
                    if h.count() == 0 { 0.0 } else { h.max() }
                );
            }
        }
        let top = self.top_ops(12);
        if !top.is_empty() {
            let _ = writeln!(out, "top ops (calls · fwd ms · bwd ms · elements):");
            for (kind, op) in &top {
                let _ = writeln!(
                    out,
                    "  {kind:<24} {:>9} · {:>9.1} · {:>9.1} · {:>12}",
                    op.calls,
                    ms(op.forward_ns),
                    ms(op.backward_ns),
                    op.elements
                );
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "(dropped {} records past the in-memory cap)",
                self.dropped
            );
        }
        out
    }
}

/// Render the current end-of-run summary (shortcut for `snapshot().render()`).
pub fn summary() -> String {
    snapshot().render()
}
