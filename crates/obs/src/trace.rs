//! Causal tracing: request IDs, deterministic trace sampling, and a
//! Chrome-trace-event (Perfetto-loadable) exporter over journaled spans.
//!
//! # Request IDs and sampling
//!
//! The serving path accepts a client-supplied `X-Request-Id` or assigns one
//! from [`next_request_id`]: a splitmix64 hash of a process-wide counter
//! mixed with `SITEREC_TRACE_SEED`, so IDs are unique within a process and
//! reproducible across reruns of a deterministic workload — never derived
//! from wall-clock randomness.
//!
//! Trace sampling is equally deterministic: [`sample_request`] admits every
//! `N`-th request (`SITEREC_TRACE_SAMPLE=N`; `0` disables, `1` traces
//! everything) by ticking a seeded atomic counter. Which requests get a
//! `serve_trace` journal record therefore depends only on arrival order,
//! not on time or chance, so a replayed request stream samples the same
//! positions every run.
//!
//! # Chrome trace export
//!
//! [`chrome_trace_from_journal`] converts the `span` records of a JSONL
//! run-journal into the Chrome trace-event JSON format (`traceEvents` with
//! `ph:"X"` complete events), which chrome://tracing and Perfetto load
//! directly. Spans carry `start_ns` (offset from the process epoch) and
//! `tid` precisely so this export can reconstruct the timeline; `event` and
//! typed records that carry a `dur_ns` are not spans and are skipped.
//! [`chrome_trace_current`] exports the live recorder state the same way.

use crate::json::{self, Json};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Default sampling period when `SITEREC_TRACE_SAMPLE` is unset: one traced
/// request out of every 16 (cheap enough to leave on wherever the recorder
/// itself is on).
pub const DEFAULT_SAMPLE_EVERY: u64 = 16;

struct Sampler {
    /// Sample every `every`-th request; 0 disables sampling entirely.
    every: AtomicU64,
    /// Monotonic request counter, pre-seeded so the sampled phase is a pure
    /// function of (seed, arrival index).
    counter: AtomicU64,
    /// The id-generation seed (`SITEREC_TRACE_SEED`, default 0).
    seed: u64,
    /// Counter behind assigned request IDs (separate from the sampling
    /// counter: not every request needs an assigned ID).
    ids: AtomicU64,
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok())
}

fn sampler() -> &'static Sampler {
    static SAMPLER: OnceLock<Sampler> = OnceLock::new();
    SAMPLER.get_or_init(|| {
        let seed = env_u64("SITEREC_TRACE_SEED").unwrap_or(0);
        let every = env_u64("SITEREC_TRACE_SAMPLE").unwrap_or(DEFAULT_SAMPLE_EVERY);
        Sampler {
            every: AtomicU64::new(every),
            counter: AtomicU64::new(seed),
            seed,
            ids: AtomicU64::new(0),
        }
    })
}

/// splitmix64: the standard 64-bit finalizer, used to spread the sequential
/// ID counter into well-mixed hex identifiers.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Should this request be traced? Deterministic: ticks the seeded counter
/// and admits every `N`-th request (see module docs). Always `false` when
/// the recorder is disabled or the period is 0, in which case the counter
/// does not advance — so enabling tracing later still starts at the seed.
pub fn sample_request() -> bool {
    if !crate::enabled() {
        return false;
    }
    let s = sampler();
    let every = s.every.load(Ordering::Relaxed);
    if every == 0 {
        return false;
    }
    s.counter
        .fetch_add(1, Ordering::Relaxed)
        .is_multiple_of(every)
}

/// Override the sampling period (`0` disables; `1` traces every request).
/// Normally set via `SITEREC_TRACE_SAMPLE`; tests and harnesses use this.
pub fn set_sample_every(every: u64) {
    sampler().every.store(every, Ordering::Relaxed);
}

/// The current sampling period (0 when sampling is off).
pub fn sample_every() -> u64 {
    sampler().every.load(Ordering::Relaxed)
}

/// Assign a request ID: 16 lowercase hex chars prefixed `sr-`, derived by
/// hashing a process-wide counter with the trace seed (no wall-clock
/// randomness, so a deterministic workload assigns identical IDs run to
/// run).
pub fn next_request_id() -> String {
    let s = sampler();
    let n = s.ids.fetch_add(1, Ordering::Relaxed);
    format!("sr-{:016x}", splitmix64(s.seed ^ n))
}

/// One Chrome trace event distilled from a journal `span` record.
struct SpanEvent<'a> {
    name: &'a str,
    start_ns: u64,
    dur_ns: u64,
    tid: u64,
    /// Extra (key, value) pairs forwarded into the event's `args`.
    args: Vec<(&'a str, &'a Json)>,
}

/// Fields every span record consumes structurally; everything else is
/// forwarded into the Chrome event's `args` object.
const STRUCTURAL: &[&str] = &["type", "name", "start_ns", "dur_ns", "tid"];

fn span_event(fields: &[(String, Json)]) -> Option<SpanEvent<'_>> {
    let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    let name = get("name")?.as_str()?;
    let start_ns = get("start_ns")?.as_num()? as u64;
    let dur_ns = get("dur_ns")?.as_num()? as u64;
    let tid = get("tid").and_then(Json::as_num).unwrap_or(0.0) as u64;
    let args = fields
        .iter()
        .filter(|(k, _)| !STRUCTURAL.contains(&k.as_str()))
        .map(|(k, v)| (k.as_str(), v))
        .collect();
    Some(SpanEvent {
        name,
        start_ns,
        dur_ns,
        tid,
        args,
    })
}

fn write_event(out: &mut String, ev: &SpanEvent<'_>, first: bool) {
    use std::fmt::Write as _;
    if !first {
        out.push_str(",\n");
    }
    out.push_str("{\"name\":");
    json::write_escaped(out, ev.name);
    // Chrome trace timestamps are microseconds; fractional µs keep the
    // original nanosecond resolution.
    let _ = write!(
        out,
        ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}",
        ev.start_ns as f64 / 1e3,
        ev.dur_ns as f64 / 1e3,
        ev.tid
    );
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped(out, k);
            out.push(':');
            out.push_str(&v.render());
        }
        out.push('}');
    }
    out.push('}');
}

/// Convert JSONL journal text into Chrome trace-event JSON.
///
/// Every `span` line that carries `start_ns`/`dur_ns` becomes one complete
/// (`ph:"X"`) event on the process timeline; other record types are skipped.
/// Returns an error if any line fails to parse as JSON, or if the journal
/// holds no exportable spans — an empty trace is always a usage error
/// (journal written without the recorder enabled, or from a build predating
/// span timestamps), never something to silently render as a blank page.
pub fn chrome_trace_from_journal(text: &str) -> Result<String, String> {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut n = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: invalid JSON: {e}", idx + 1))?;
        let Json::Obj(fields) = &v else {
            return Err(format!("line {}: not a JSON object", idx + 1));
        };
        if v.get("type").and_then(Json::as_str) != Some("span") {
            continue;
        }
        if let Some(ev) = span_event(fields) {
            write_event(&mut out, &ev, n == 0);
            n += 1;
        }
    }
    if n == 0 {
        return Err("journal holds no spans with start_ns timestamps; \
                    was it written with the recorder enabled?"
            .to_string());
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    Ok(out)
}

/// Export the live recorder state (see [`crate::journal_to_string`]) as
/// Chrome trace-event JSON. Errors if no spans have been recorded.
pub fn chrome_trace_current() -> Result<String, String> {
    chrome_trace_from_journal(&crate::journal_to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_deterministic_in_form() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert!(id.starts_with("sr-"), "bad prefix: {id}");
            assert_eq!(id.len(), 3 + 16, "bad length: {id}");
            assert!(id[3..].chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn sampling_is_periodic_and_counter_driven() {
        crate::set_enabled(true);
        set_sample_every(3);
        let hits: Vec<bool> = (0..9).map(|_| sample_request()).collect();
        assert_eq!(hits.iter().filter(|&&h| h).count(), 3, "hits: {hits:?}");
        // Every third position relative to the first hit.
        let first = hits.iter().position(|&h| h).unwrap();
        for (i, &h) in hits.iter().enumerate() {
            assert_eq!(h, (i + 3 - first) % 3 == 0, "position {i} in {hits:?}");
        }
        set_sample_every(0);
        assert!(!sample_request());
        crate::set_enabled(false);
        set_sample_every(DEFAULT_SAMPLE_EVERY);
    }

    #[test]
    fn chrome_trace_exports_spans_and_rejects_empty() {
        let journal = concat!(
            "{\"type\":\"span\",\"name\":\"train_epoch\",\"path\":\"train/train_epoch\",",
            "\"epoch\":3,\"start_ns\":1500,\"tid\":2,\"dur_ns\":2500}\n",
            "{\"type\":\"event\",\"name\":\"not_a_span\"}\n",
        );
        let trace = chrome_trace_from_journal(journal).unwrap();
        let v = json::parse(&trace).unwrap();
        let events = match v.get("traceEvents") {
            Some(Json::Arr(evs)) => evs,
            other => panic!("bad traceEvents: {other:?}"),
        };
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.get("name").unwrap().as_str(), Some("train_epoch"));
        assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(ev.get("ts").unwrap().as_num(), Some(1.5));
        assert_eq!(ev.get("dur").unwrap().as_num(), Some(2.5));
        assert_eq!(ev.get("tid").unwrap().as_num(), Some(2.0));
        assert_eq!(
            ev.get("args").unwrap().get("epoch").unwrap().as_num(),
            Some(3.0)
        );

        assert!(chrome_trace_from_journal("{\"type\":\"event\",\"name\":\"x\"}\n").is_err());
        assert!(chrome_trace_from_journal("not json\n").is_err());
    }
}
