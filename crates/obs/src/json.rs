//! A minimal JSON writer/parser pair, self-contained so the journal works
//! even when the workspace builds against the offline `serde_json` stub
//! (whose serializer is a placeholder — see `vendor/stubs/README.md`).
//!
//! The writer covers exactly what journal records need (objects of strings,
//! integers, floats, booleans and flat arrays); the parser covers the full
//! JSON value grammar so [`crate::validate_journal`] can check real files.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; validation only needs the kind).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Render this value back to compact JSON text. Together with [`parse`]
    /// this round-trips any JSON document (object key order and duplicate
    /// keys are preserved; non-finite numbers, which [`parse`] never
    /// produces, render as strings like [`write_f64`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_f64(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Append `s` to `out` as a JSON string literal (with escaping).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an `f64` as a JSON value. Finite values become numbers; NaN and
/// infinities (not representable in JSON) become strings.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on a finite f64 always yields a valid JSON number (possibly
        // exponent-free integer form like `1`), round-trippable via f64.
        let _ = write!(out, "{v}");
    } else {
        write_escaped(out, &v.to_string());
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path over plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the journal
                            // writer; map lone surrogates to the replacement
                            // character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -1.5e2 ").unwrap(), Json::Num(-150.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": false}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Bool(false)));
        match v.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[1].get("b").unwrap().as_str(), Some("c"));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nulll", "1 2"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_roundtrip() {
        let raw = "quote \" slash \\ newline \n tab \t ctrl \u{1} unicode é";
        let mut line = String::new();
        write_escaped(&mut line, raw);
        assert_eq!(parse(&line).unwrap(), Json::Str(raw.to_string()));
    }

    #[test]
    fn render_roundtrips_nested_escaped_unicode() {
        // parse → render → parse must be a fixed point for any document the
        // journal (or the ops tooling) can see: nested structure, escaped
        // strings, unicode (including astral-plane chars), duplicate keys.
        for doc in [
            r#"{"a":[1,{"b":"c"},[null,true,false]],"d":{"e":{"f":[]}}}"#,
            "{\"msg\":\"quote \\\" slash \\\\ nl \\n tab \\t ctrl \\u0001\"}",
            r#"{"city":"北京","emoji":"🦀","accents":"éàü"}"#,
            r#"{"k":1,"k":2}"#,
            r#"[-1.5e2,0.25,1e10]"#,
        ] {
            let once = parse(doc).unwrap();
            let rendered = once.render();
            let twice = parse(&rendered).unwrap();
            assert_eq!(once, twice, "render not a fixed point for {doc}");
            assert_eq!(rendered, twice.render(), "unstable rendering for {doc}");
        }
        // Compactness + key order preservation on a concrete case.
        let v = parse(r#"{ "b" : 1 , "a" : [ "x" ] }"#).unwrap();
        assert_eq!(v.render(), r#"{"b":1,"a":["x"]}"#);
    }

    #[test]
    fn f64_writer_handles_non_finite() {
        let mut s = String::new();
        write_f64(&mut s, 2.5);
        assert_eq!(s, "2.5");
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(parse(&s).unwrap(), Json::Str("NaN".into()));
        let mut s = String::new();
        write_f64(&mut s, f64::INFINITY);
        assert_eq!(parse(&s).unwrap(), Json::Str("inf".into()));
    }
}
