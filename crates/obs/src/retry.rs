//! Bounded deterministic retry with exponential backoff for transient I/O.
//!
//! Durable-write seams (checkpoints, the JSONL journal, embedding images)
//! wrap their innermost write in [`retry_io`]: a failed attempt sleeps a
//! deterministic, exponentially growing delay and tries again, up to a
//! bounded attempt budget. The schedule is fixed up front — no jitter, no
//! clock reads — so a given fault schedule produces the same sequence of
//! attempts every run, keeping chaos harnesses replayable.
//!
//! The budget comes from [`RetryCfg::from_env`]:
//!
//! - `SITEREC_IO_RETRIES` — total attempts, default 3 (minimum 1),
//! - `SITEREC_IO_BACKOFF_MS` — first backoff delay in ms, default 10;
//!   each subsequent delay doubles, capped at 250 ms.
//!
//! Retrying is for *transient* faults (EIO, ENOSPC races, injected
//! [`crate::failpoint`] errors); callers still surface the final error when
//! the budget runs out, and corruption (which reads as success) is caught
//! by CRC checks downstream, never here.

use std::io;
use std::sync::OnceLock;
use std::time::Duration;

/// Attempt budget and backoff schedule for [`retry_io`].
#[derive(Debug, Clone, Copy)]
pub struct RetryCfg {
    /// Total attempts (≥ 1); 1 means no retry at all.
    pub attempts: u32,
    /// Delay before the second attempt; doubles each retry.
    pub base: Duration,
    /// Upper bound on any single backoff delay.
    pub cap: Duration,
}

impl RetryCfg {
    /// A single attempt — behaviour identical to not retrying.
    pub const fn none() -> RetryCfg {
        RetryCfg {
            attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    /// The process-wide config: `SITEREC_IO_RETRIES` attempts (default 3)
    /// starting at `SITEREC_IO_BACKOFF_MS` ms (default 10), capped at
    /// 250 ms per delay. Parsed once; unparsable values keep the default.
    pub fn from_env() -> RetryCfg {
        static CFG: OnceLock<(u32, u64)> = OnceLock::new();
        let &(attempts, base_ms) = CFG.get_or_init(|| {
            let attempts = std::env::var("SITEREC_IO_RETRIES")
                .ok()
                .and_then(|v| v.trim().parse::<u32>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(3);
            let base_ms = std::env::var("SITEREC_IO_BACKOFF_MS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(10);
            (attempts, base_ms)
        });
        RetryCfg {
            attempts,
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(250),
        }
    }
}

/// Run `f` until it succeeds or the attempt budget is spent, sleeping the
/// deterministic backoff schedule between attempts. `what` labels the olog
/// lines; retries tick the `io.retry.attempts` counter and a recovery
/// after ≥1 failure ticks `io.retry.recovered`. Returns the last error
/// when every attempt fails.
pub fn retry_io<T>(
    what: &str,
    cfg: RetryCfg,
    mut f: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let attempts = cfg.attempts.max(1);
    let mut delay = cfg.base.min(cfg.cap);
    let mut attempt = 1u32;
    loop {
        match f() {
            Ok(v) => {
                if attempt > 1 {
                    crate::counter_add("io.retry.recovered", 1);
                    crate::olog!(Summary, "{what}: recovered on attempt {attempt}/{attempts}");
                }
                return Ok(v);
            }
            Err(e) if attempt < attempts => {
                crate::counter_add("io.retry.attempts", 1);
                crate::olog!(
                    Summary,
                    "{what}: attempt {attempt}/{attempts} failed ({e}); retrying in {delay:?}"
                );
                std::thread::sleep(delay);
                delay = (delay * 2).min(cfg.cap);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_first_success_without_sleeping() {
        let mut calls = 0;
        let r = retry_io("t", RetryCfg::from_env(), || {
            calls += 1;
            Ok::<_, io::Error>(41 + calls)
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_transient_failures_within_budget() {
        let cfg = RetryCfg {
            attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
        };
        let mut calls = 0;
        let r = retry_io("t", cfg, || {
            calls += 1;
            if calls < 3 {
                Err(io::Error::other("transient"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(r.unwrap(), 3);
    }

    #[test]
    fn surfaces_the_last_error_when_budget_spent() {
        let cfg = RetryCfg {
            attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(1),
        };
        let mut calls = 0;
        let r = retry_io("t", cfg, || -> io::Result<()> {
            calls += 1;
            Err(io::Error::other(format!("fail {calls}")))
        });
        assert_eq!(calls, 2);
        assert_eq!(r.unwrap_err().to_string(), "fail 2");
    }

    #[test]
    fn none_means_exactly_one_attempt() {
        let mut calls = 0;
        let r = retry_io("t", RetryCfg::none(), || -> io::Result<()> {
            calls += 1;
            Err(io::Error::other("nope"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
    }
}
