//! Zero-dependency observability for the O²-SiteRec reproduction.
//!
//! This crate is the telemetry substrate for the whole workspace: spans and
//! structured events, counters/gauges/fixed-bucket histograms, opt-in
//! per-op tensor profiles, and a JSONL run-journal — all with no external
//! dependencies so it works in the offline build environment.
//!
//! # Switches
//!
//! Everything is off by default; a disabled call site costs one relaxed
//! atomic load. The environment enables things at process start:
//!
//! - `SITEREC_JOURNAL=path` — write a JSONL run-journal (also enables
//!   recording and per-op tape profiling),
//! - `SITEREC_PROFILE=1` — enable recording and per-op tape profiling,
//! - `SITEREC_LOG=off|summary|debug` — stderr verbosity for library crates
//!   (default `off`: libraries print nothing),
//! - `SITEREC_FAILPOINTS=name=mode@N,…` — arm deterministic fault
//!   injection at named I/O seams (see [`failpoint`]),
//! - `SITEREC_IO_RETRIES` / `SITEREC_IO_BACKOFF_MS` — attempt budget and
//!   backoff base for [`retry_io`] around durable writes,
//! - `SITEREC_TRACE_SAMPLE` / `SITEREC_TRACE_SEED` — request-trace sampling
//!   period and id/sampling seed for the serving path (see [`trace`]).
//!
//! Tests and harnesses can override programmatically via [`set_enabled`],
//! [`set_profiling`] and [`set_log_level`].
//!
//! # Determinism
//!
//! Instrumentation never feeds back into computation: model outputs and
//! recovery traces are bitwise identical with the recorder enabled or
//! disabled, at any thread count (see the determinism tests in
//! `siterec-tensor` and `siterec-core`). Per-thread record buffers merge
//! into the global store when each thread's outermost span closes.
//!
//! # Example
//!
//! ```
//! siterec_obs::set_enabled(true);
//! {
//!     let _span = siterec_obs::span!("train", model = "demo", seed = 7u64);
//!     siterec_obs::record!("train_epoch", model = "demo", epoch = 0u64, loss = 0.5);
//!     siterec_obs::counter_add("demo.steps", 1);
//! }
//! let journal = siterec_obs::journal_to_string();
//! let stats = siterec_obs::validate_journal(&journal).unwrap();
//! assert_eq!(stats.count("span"), 1);
//! assert_eq!(stats.count("train_epoch"), 1);
//! # siterec_obs::reset();
//! # siterec_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]

pub mod failpoint;
mod fsio;
mod journal;
pub mod json;
mod recorder;
mod retry;
pub mod trace;

pub use fsio::{atomic_write, atomic_write_fp, read_fault};
pub use journal::{journal_to_string, validate_journal, write_journal, JournalStats};
pub use recorder::{
    counter_add, enabled, event_fields, gauge_set, hist_record, journal_path, log_enabled,
    log_level, log_line, op_profile_add, profiling_enabled, record_fields, reset, set_enabled,
    set_log_level, set_profiling, snapshot, summary, Histogram, LogLevel, OpProfile, Record,
    Snapshot, SpanAgg, SpanGuard, Value, HIST_BUCKETS,
};
pub use retry::{retry_io, RetryCfg};

/// Open a hierarchical span; returns a guard that records the span (name,
/// path, fields, duration) when dropped. All arguments are evaluated only
/// when the recorder is enabled.
///
/// ```
/// # siterec_obs::set_enabled(true);
/// let _span = siterec_obs::span!("train_epoch", epoch = 3u64);
/// # drop(_span);
/// # siterec_obs::reset();
/// # siterec_obs::set_enabled(false);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter(
                $name,
                vec![$((stringify!($key), $crate::Value::from($value))),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Emit a generic named event record (`type = "event"`). Arguments are
/// evaluated only when the recorder is enabled.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::event_fields(
                $name,
                vec![$((stringify!($key), $crate::Value::from($value))),*],
            );
        }
    };
}

/// Emit a typed journal record (e.g. `"train_epoch"`, `"recovery"`,
/// `"job_failure"`); the type must be one of the journal schema's known
/// types (see `validate_journal`). Arguments are evaluated only when the
/// recorder is enabled.
#[macro_export]
macro_rules! record {
    ($kind:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::record_fields(
                $kind,
                vec![$((stringify!($key), $crate::Value::from($value))),*],
            );
        }
    };
}

/// Log one formatted line to stderr at the given [`LogLevel`] variant name
/// (`Summary` or `Debug`); nothing is printed (or formatted) unless
/// `SITEREC_LOG` admits the level.
///
/// ```
/// siterec_obs::olog!(Debug, "split sizes: train={} test={}", 10, 2);
/// ```
#[macro_export]
macro_rules! olog {
    ($level:ident, $($arg:tt)*) => {
        if $crate::log_enabled($crate::LogLevel::$level) {
            $crate::log_line(format_args!($($arg)*));
        }
    };
}
