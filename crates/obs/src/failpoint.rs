//! Deterministic fault injection at named I/O seams.
//!
//! A **failpoint** is a named hook compiled into an I/O path — checkpoint
//! writes, journal appends, embedding-image save/load, the serve reload —
//! that can be *armed* to fail on a chosen hit with a chosen fault mode.
//! Unarmed (the default), a failpoint costs one relaxed atomic load and
//! takes no lock; nothing about the fast path allocates or branches further.
//!
//! # Schedule grammar
//!
//! Failpoints are armed from the `SITEREC_FAILPOINTS` environment variable
//! at first use, or programmatically via [`arm`]. A schedule is a
//! comma-separated list of specs:
//!
//! ```text
//! name=mode          fire on every hit
//! name=mode@N        fire exactly on the N-th hit (1-based)
//! name=mode@NxC      fire on hits N, N+1, …, N+C-1
//! ```
//!
//! e.g. `SITEREC_FAILPOINTS=ckpt.write.fsync=err@2,emb.image.load=short@1`.
//! Modes are [`Mode::Err`] (clean I/O error, nothing written), [`Mode::Short`]
//! (torn/truncated data), and [`Mode::Corrupt`] (silent bit flip — the write
//! "succeeds"). What each mode does at a given seam is defined by the seam:
//! see [`crate::atomic_write_fp`] and [`crate::read_fault`].
//!
//! # Determinism
//!
//! Hits are counted per name under one lock, so a fixed schedule against a
//! fixed workload fires at exactly the same operations every run — fault
//! injection is as replayable as everything else in the workspace. Every
//! firing journals a `failpoint` record (`name`, `mode`, `hit`) and ticks
//! the `failpoint.fired` counter; [`stats`] exposes hit/fired counts for
//! harness assertions (see the `chaos_soak` harness in `siterec-serve`).

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Environment variable holding the failpoint schedule.
pub const ENV: &str = "SITEREC_FAILPOINTS";

/// What kind of fault a firing failpoint injects. The precise effect is
/// seam-defined; the conventions are documented per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// A clean `io::Error`: the operation reports failure and (at write
    /// seams) leaves the destination untouched. Models EIO/ENOSPC.
    Err,
    /// Torn data: a write seam lands a truncated prefix at the destination
    /// and then errors; a read seam truncates the bytes it read. Models a
    /// partial write or short read.
    Short,
    /// Silent corruption: one bit is flipped and the operation *succeeds*.
    /// Models bit rot and firmware lies; only CRC checks can catch it.
    Corrupt,
}

impl Mode {
    /// The schedule-grammar name of the mode (`err` / `short` / `corrupt`).
    pub fn label(self) -> &'static str {
        match self {
            Mode::Err => "err",
            Mode::Short => "short",
            Mode::Corrupt => "corrupt",
        }
    }

    fn parse(s: &str) -> Result<Mode, String> {
        match s {
            "err" => Ok(Mode::Err),
            "short" => Ok(Mode::Short),
            "corrupt" => Ok(Mode::Corrupt),
            other => Err(format!(
                "unknown failpoint mode {other:?} (want err|short|corrupt)"
            )),
        }
    }
}

/// A firing failpoint, as returned by [`check`]: the armed mode plus which
/// hit (1-based) this was.
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// The fault mode the seam must inject.
    pub mode: Mode,
    /// The 1-based hit count at which this firing happened.
    pub hit: u64,
}

impl Fault {
    /// A descriptive `io::Error` for seams that report this fault as a
    /// clean error (modes [`Mode::Err`] and [`Mode::Short`]).
    pub fn io_error(&self, name: &str) -> io::Error {
        io::Error::other(format!(
            "injected failpoint {name} ({} on hit {})",
            self.mode.label(),
            self.hit
        ))
    }
}

/// Hit/fired counts for one armed failpoint, from [`stats`].
#[derive(Debug, Clone)]
pub struct FpStat {
    /// The failpoint name.
    pub name: String,
    /// The armed fault mode.
    pub mode: Mode,
    /// How many times [`check`] was reached for this name while armed.
    pub hits: u64,
    /// How many of those hits fired the fault.
    pub fired: u64,
}

#[derive(Debug, Clone)]
struct Spec {
    mode: Mode,
    /// First hit (1-based) that fires.
    from: u64,
    /// Number of consecutive firing hits; `u64::MAX` = every hit from `from`.
    count: u64,
    hits: u64,
    fired: u64,
}

struct State {
    armed: AtomicBool,
    map: Mutex<BTreeMap<String, Spec>>,
}

fn lock(state: &State) -> MutexGuard<'_, BTreeMap<String, Spec>> {
    // Failpoint bookkeeping must survive a panicking test thread.
    state.map.lock().unwrap_or_else(|e| e.into_inner())
}

fn state() -> &'static State {
    static STATE: OnceLock<State> = OnceLock::new();
    STATE.get_or_init(|| {
        let st = State {
            armed: AtomicBool::new(false),
            map: Mutex::new(BTreeMap::new()),
        };
        if let Ok(schedule) = std::env::var(ENV) {
            if !schedule.trim().is_empty() {
                match parse_schedule(&schedule) {
                    Ok(map) => {
                        st.armed.store(!map.is_empty(), Ordering::Release);
                        *st.map.lock().unwrap_or_else(|e| e.into_inner()) = map;
                    }
                    Err(e) => eprintln!("siterec-obs: ignoring invalid {ENV}: {e}"),
                }
            }
        }
        st
    })
}

fn parse_schedule(schedule: &str) -> Result<BTreeMap<String, Spec>, String> {
    let mut map = BTreeMap::new();
    for entry in schedule.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, rhs) = entry
            .split_once('=')
            .ok_or_else(|| format!("entry {entry:?} is not name=mode[@N[xC]]"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("entry {entry:?} has an empty failpoint name"));
        }
        let (mode_str, from, count) =
            match rhs.split_once('@') {
                None => (rhs.trim(), 1, u64::MAX),
                Some((m, at)) => {
                    let (from_str, count_str) = match at.split_once('x') {
                        None => (at, None),
                        Some((f, c)) => (f, Some(c)),
                    };
                    let from: u64 = from_str.trim().parse().map_err(|_| {
                        format!("entry {entry:?}: hit index {from_str:?} not a number")
                    })?;
                    if from == 0 {
                        return Err(format!("entry {entry:?}: hit indices are 1-based"));
                    }
                    let count: u64 = match count_str {
                        None => 1,
                        Some(c) => c.trim().parse().map_err(|_| {
                            format!("entry {entry:?}: repeat count {c:?} not a number")
                        })?,
                    };
                    (m.trim(), from, count.max(1))
                }
            };
        let mode = Mode::parse(mode_str).map_err(|e| format!("entry {entry:?}: {e}"))?;
        map.insert(
            name.to_string(),
            Spec {
                mode,
                from,
                count,
                hits: 0,
                fired: 0,
            },
        );
    }
    Ok(map)
}

/// Arm the registry with a schedule (see the module docs for the grammar),
/// replacing any previous schedule and zeroing all hit counters. Intended
/// for tests and chaos harnesses; production arms via [`ENV`].
pub fn arm(schedule: &str) -> Result<(), String> {
    let map = parse_schedule(schedule)?;
    let st = state();
    let armed = !map.is_empty();
    *lock(st) = map;
    st.armed.store(armed, Ordering::Release);
    Ok(())
}

/// Disarm every failpoint and clear all hit counters. After this, [`check`]
/// is back to its one-atomic-load fast path.
pub fn disarm() {
    let st = state();
    st.armed.store(false, Ordering::Release);
    lock(st).clear();
}

/// Whether any failpoint is armed (one relaxed atomic load).
pub fn armed() -> bool {
    state().armed.load(Ordering::Relaxed)
}

/// The hook every instrumented seam calls: counts a hit against `name` and
/// returns the [`Fault`] to inject if the armed schedule says this hit
/// fires. Unarmed, this is a single relaxed atomic load returning `None`.
/// A firing journals a `failpoint` record and ticks `failpoint.fired`.
pub fn check(name: &str) -> Option<Fault> {
    let st = state();
    if !st.armed.load(Ordering::Relaxed) {
        return None;
    }
    let fault = {
        let mut map = lock(st);
        let spec = map.get_mut(name)?;
        spec.hits += 1;
        let hit = spec.hits;
        if hit < spec.from || hit - spec.from >= spec.count {
            return None;
        }
        spec.fired += 1;
        Fault {
            mode: spec.mode,
            hit,
        }
    };
    crate::counter_add("failpoint.fired", 1);
    crate::record!(
        "failpoint",
        name = name,
        mode = fault.mode.label(),
        hit = fault.hit
    );
    crate::olog!(
        Summary,
        "failpoint {name} fired: {} on hit {}",
        fault.mode.label(),
        fault.hit
    );
    Some(fault)
}

/// How many hits `name` has absorbed since it was armed (0 if not armed).
pub fn hits(name: &str) -> u64 {
    lock(state()).get(name).map_or(0, |s| s.hits)
}

/// Hit/fired counts for every armed failpoint, name-ordered.
pub fn stats() -> Vec<FpStat> {
    lock(state())
        .iter()
        .map(|(name, s)| FpStat {
            name: name.clone(),
            mode: s.mode,
            hits: s.hits,
            fired: s.fired,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry state is process-global; integration-level behavior (firing,
    // journaling, seam wiring) is exercised single-threaded in
    // `tests/obs_core.rs` under its test lock. Here only the pure parser.

    #[test]
    fn parses_full_grammar() {
        let map = parse_schedule("a=err, b=short@3 ,c=corrupt@2x4,,").unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(map["a"].mode, Mode::Err);
        assert_eq!((map["a"].from, map["a"].count), (1, u64::MAX));
        assert_eq!(map["b"].mode, Mode::Short);
        assert_eq!((map["b"].from, map["b"].count), (3, 1));
        assert_eq!(map["c"].mode, Mode::Corrupt);
        assert_eq!((map["c"].from, map["c"].count), (2, 4));
    }

    #[test]
    fn rejects_malformed_schedules() {
        for bad in [
            "nomode",
            "a=explode",
            "a=err@zero",
            "a=err@0",
            "a=err@1xq",
            "=err@1",
        ] {
            assert!(parse_schedule(bad).is_err(), "accepted {bad:?}");
        }
    }
}
