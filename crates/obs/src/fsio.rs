//! Crash-safe file writes shared by every artifact writer in the workspace.
//!
//! A process that dies mid-`fs::write` leaves a torn file at the destination
//! path — half a JSON artifact, half a checkpoint. [`atomic_write`] never
//! exposes a partial file: bytes land in a same-directory temp file, are
//! fsynced, and only then renamed over the destination (rename within one
//! directory is atomic on POSIX). The directory itself is fsynced
//! best-effort afterwards so the rename survives a power cut.
//!
//! Used by the JSONL run-journal writer ([`crate::write_journal`]), the
//! `siterec-tensor` checkpoint writer, and the bench artifact writers
//! (`BENCH_parallel.json` / `BENCH_profile.json`).

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::Path;

/// Write `bytes` to `path` atomically: temp file + fsync + rename.
///
/// The temp file lives in `path`'s directory (same filesystem, so the rename
/// cannot degrade to a copy) and is named after the destination plus the
/// process id, so concurrent writers of *different* destinations never
/// collide. On any error the temp file is removed and the previous contents
/// of `path`, if any, are left untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let base = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "atomic_write: no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(".{base}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
        return result;
    }
    // Persist the rename itself. Not all platforms allow fsync on a
    // directory handle; failure here does not un-write the file.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("siterec_fsio_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let d = tmpdir("replace");
        let p = d.join("a.json");
        atomic_write(&p, b"one").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"one");
        atomic_write(&p, b"two-longer").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"two-longer");
        // No temp droppings left behind.
        let leftovers: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn failure_leaves_destination_intact() {
        let d = tmpdir("intact");
        let p = d.join("keep.bin");
        atomic_write(&p, b"original").unwrap();
        // Writing into a directory that does not exist fails without
        // touching the destination.
        let bad = d.join("missing-subdir").join("keep.bin");
        assert!(atomic_write(&bad, b"x").is_err());
        assert_eq!(fs::read(&p).unwrap(), b"original");
        let _ = fs::remove_dir_all(&d);
    }
}
