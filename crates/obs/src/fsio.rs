//! Crash-safe file writes shared by every artifact writer in the workspace.
//!
//! A process that dies mid-`fs::write` leaves a torn file at the destination
//! path — half a JSON artifact, half a checkpoint. [`atomic_write`] never
//! exposes a partial file: bytes land in a same-directory temp file, are
//! fsynced, and only then renamed over the destination (rename within one
//! directory is atomic on POSIX). The directory itself is fsynced
//! best-effort afterwards so the rename survives a power cut.
//!
//! Used by the JSONL run-journal writer ([`crate::write_journal`]), the
//! `siterec-tensor` checkpoint writer, and the bench artifact writers
//! (`BENCH_parallel.json` / `BENCH_profile.json`).
//!
//! Every write funnels through a [`crate::failpoint`] seam: [`atomic_write`]
//! checks the generic `fsio.atomic_write` failpoint, and callers that own a
//! named seam (checkpoints, journal, embedding image) use
//! [`atomic_write_fp`] to check their own name first. Read paths apply
//! faults to already-read bytes via [`read_fault`].

use crate::failpoint::{self, Fault, Mode};
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::Path;

/// Write `bytes` to `path` atomically: temp file + fsync + rename.
///
/// The temp file lives in `path`'s directory (same filesystem, so the rename
/// cannot degrade to a copy) and is named after the destination plus the
/// process id, so concurrent writers of *different* destinations never
/// collide. On any error the temp file is removed and the previous contents
/// of `path`, if any, are left untouched.
///
/// Subject to the `fsio.atomic_write` failpoint (see [`atomic_write_fp`]
/// for the fault-mode semantics).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_fp(path, bytes, "fsio.atomic_write")
}

/// [`atomic_write`] with a named failpoint seam checked first.
///
/// Fault-mode semantics at a write seam:
///
/// - [`Mode::Err`]: nothing is written; the injected `io::Error` is
///   returned (the destination keeps its previous contents — exactly the
///   `atomic_write` failure contract).
/// - [`Mode::Short`]: a truncated prefix is written **non-atomically** to
///   the destination itself (a torn write, the very thing `atomic_write`
///   exists to prevent) and the error is returned — downstream CRC checks
///   must catch the damage.
/// - [`Mode::Corrupt`]: one bit of the payload is flipped and the write
///   succeeds silently.
///
/// The generic `fsio.atomic_write` seam is checked after `fp`, so blanket
/// schedules hit every artifact writer without naming each one.
pub fn atomic_write_fp(path: &Path, bytes: &[u8], fp: &str) -> io::Result<()> {
    if let Some(fault) = failpoint::check(fp) {
        return faulted_write(path, bytes, fp, fault);
    }
    if fp != "fsio.atomic_write" {
        if let Some(fault) = failpoint::check("fsio.atomic_write") {
            return faulted_write(path, bytes, "fsio.atomic_write", fault);
        }
    }
    atomic_write_clean(path, bytes)
}

fn faulted_write(path: &Path, bytes: &[u8], fp: &str, fault: Fault) -> io::Result<()> {
    match fault.mode {
        Mode::Err => Err(fault.io_error(fp)),
        Mode::Short => {
            // A torn write: the prefix lands at the destination directly,
            // bypassing the temp-file dance, then the caller sees an error.
            let _ = fs::write(path, &bytes[..bytes.len() / 2]);
            Err(fault.io_error(fp))
        }
        Mode::Corrupt => {
            let mut copy = bytes.to_vec();
            if !copy.is_empty() {
                let mid = copy.len() / 2;
                copy[mid] ^= 0x01;
            }
            atomic_write_clean(path, &copy)
        }
    }
}

/// Apply a named read-seam failpoint to bytes just read from disk:
/// [`Mode::Err`] returns the injected error, [`Mode::Short`] truncates the
/// buffer to half (a short read), [`Mode::Corrupt`] flips one bit. Unarmed,
/// this is one relaxed atomic load.
pub fn read_fault(fp: &str, bytes: &mut Vec<u8>) -> io::Result<()> {
    if let Some(fault) = failpoint::check(fp) {
        match fault.mode {
            Mode::Err => return Err(fault.io_error(fp)),
            Mode::Short => bytes.truncate(bytes.len() / 2),
            Mode::Corrupt => {
                if !bytes.is_empty() {
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x01;
                }
            }
        }
    }
    Ok(())
}

fn atomic_write_clean(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let base = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "atomic_write: no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(".{base}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
        return result;
    }
    // Persist the rename itself. Not all platforms allow fsync on a
    // directory handle; failure here does not un-write the file.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("siterec_fsio_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let d = tmpdir("replace");
        let p = d.join("a.json");
        atomic_write(&p, b"one").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"one");
        atomic_write(&p, b"two-longer").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"two-longer");
        // No temp droppings left behind.
        let leftovers: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn failure_leaves_destination_intact() {
        let d = tmpdir("intact");
        let p = d.join("keep.bin");
        atomic_write(&p, b"original").unwrap();
        // Writing into a directory that does not exist fails without
        // touching the destination.
        let bad = d.join("missing-subdir").join("keep.bin");
        assert!(atomic_write(&bad, b"x").is_err());
        assert_eq!(fs::read(&p).unwrap(), b"original");
        let _ = fs::remove_dir_all(&d);
    }
}
