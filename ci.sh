#!/usr/bin/env bash
# The CI gate: format, lints, tests, docs. Run locally before pushing.
#
# Builds fully offline: the tracked .cargo/config.toml patches every external
# dependency to the API-compatible shims under vendor/stubs/ (see
# vendor/stubs/README.md) via relative paths, so a fresh clone needs no
# registry access and no generation step.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "ci: $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo test -q --workspace
# Fault-injection / resilience suites again in release mode: the release
# profile keeps debug-assertions on, so the tape's full per-op fault scan
# is exercised under the optimized build as well.
run cargo test -q --release -p siterec-sim --test fault_injection
run cargo test -q --release -p siterec-core --test resilience_recovery
run cargo test -q --release -p siterec-tensor resilience
# Disabled-recorder overhead must stay negligible under the optimized build.
run cargo test -q --release -p siterec-tensor --test obs_overhead
# Chaos-restart smoke: SIGKILL a training child at a seeded epoch, tear one
# checkpoint write in half, restart from disk, and require the final
# checkpoint to be byte-identical to an uninterrupted run — with the
# resume / checkpoint_write / checkpoint_corrupt journal records validating
# against the obs schema along the way.
run cargo run -q --release -p siterec-bench --bin chaos_train -- \
    --epochs 6 --kills 1 --threads 2 --dir target/ci_chaos
# One instrumented bench run at smoke scale: the emitted JSONL run-journal
# must validate against the siterec-obs schema.
echo "ci: instrumented smoke bench + journal validation"
SITEREC_SMOKE=1 SITEREC_JOURNAL="$PWD/target/ci_journal.jsonl" \
    cargo bench -q -p siterec-bench --bench table1_order_schema >/dev/null
run cargo run -q -p siterec-bench --bin validate_journal -- "$PWD/target/ci_journal.jsonl"
# Kernel perf-regression smoke (release — `cargo bench` builds release): the
# cache-blocked matmul must not be slower than the naive loop it replaced,
# measured on >=256^3 shapes on *this* host (self-calibrated, relative, no
# absolute-time flakiness). Exits non-zero on regression via
# SITEREC_KERNEL_GATE=1; writes BENCH_kernels.json and journals a
# `bench_artifact` record, which the schema validation below must accept.
echo "ci: kernel perf-regression gate"
SITEREC_KERNEL_GATE=1 SITEREC_JOURNAL="$PWD/target/ci_kernels.jsonl" \
    cargo bench -q -p siterec-bench --bench perf_kernels >/dev/null
run cargo run -q -p siterec-bench --bin validate_journal -- "$PWD/target/ci_kernels.jsonl"
RUSTDOCFLAGS="-D warnings" run cargo doc --workspace --no-deps
echo "ci: all gates passed"
