#!/usr/bin/env bash
# The CI gate: format, lints, tests, docs. Run locally before pushing.
#
# Builds fully offline: the tracked .cargo/config.toml patches every external
# dependency to the API-compatible shims under vendor/stubs/ (see
# vendor/stubs/README.md) via relative paths, so a fresh clone needs no
# registry access and no generation step.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "ci: $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo test -q --workspace
# Fault-injection / resilience suites again in release mode: the release
# profile keeps debug-assertions on, so the tape's full per-op fault scan
# is exercised under the optimized build as well.
run cargo test -q --release -p siterec-sim --test fault_injection
run cargo test -q --release -p siterec-core --test resilience_recovery
run cargo test -q --release -p siterec-tensor resilience
# Disabled-recorder overhead must stay negligible under the optimized build.
run cargo test -q --release -p siterec-tensor --test obs_overhead
# Chaos-restart smoke: SIGKILL a training child at a seeded epoch, tear one
# checkpoint write in half, restart from disk, and require the final
# checkpoint to be byte-identical to an uninterrupted run — with the
# resume / checkpoint_write / checkpoint_corrupt journal records validating
# against the obs schema along the way.
run cargo run -q --release -p siterec-bench --bin chaos_train -- \
    --epochs 6 --kills 1 --threads 2 --dir target/ci_chaos
# One instrumented bench run at smoke scale: the emitted JSONL run-journal
# must validate against the siterec-obs schema.
echo "ci: instrumented smoke bench + journal validation"
SITEREC_SMOKE=1 SITEREC_JOURNAL="$PWD/target/ci_journal.jsonl" \
    cargo bench -q -p siterec-bench --bench table1_order_schema >/dev/null
run cargo run -q -p siterec-bench --bin validate_journal -- "$PWD/target/ci_journal.jsonl"
# Kernel perf-regression smoke (release — `cargo bench` builds release): the
# cache-blocked matmul must not be slower than the naive loop it replaced,
# measured on >=256^3 shapes on *this* host (self-calibrated, relative, no
# absolute-time flakiness). Exits non-zero on regression via
# SITEREC_KERNEL_GATE=1; writes BENCH_kernels.json and journals a
# `bench_artifact` record, which the schema validation below must accept.
echo "ci: kernel perf-regression gate"
SITEREC_KERNEL_GATE=1 SITEREC_JOURNAL="$PWD/target/ci_kernels.jsonl" \
    cargo bench -q -p siterec-bench --bench perf_kernels >/dev/null
run cargo run -q -p siterec-bench --bin validate_journal -- "$PWD/target/ci_kernels.jsonl"
# Serving-layer smoke: the README/SERVING.md lifecycle end to end — train a
# checkpointed recipe, serve it (env knobs + flags + SREMB1 image), query
# every endpoint with the bundled client, let the --max-requests budget stop
# the server gracefully, then schema-validate its journal (which must hold
# the serve_request / serve_reload records).
echo "ci: serving-layer smoke (train -> run -> query -> journal)"
rm -rf target/ci_serve && mkdir -p target/ci_serve
SITEREC_JOURNAL="$PWD/target/ci_serve/train_journal.jsonl" \
    cargo run -q --release -p siterec-serve -- train \
    --recipe tiny:7 --ckpt target/ci_serve/ckpt --epochs 2
SITEREC_JOURNAL="$PWD/target/ci_serve/journal.jsonl" \
    SITEREC_TRACE_SAMPLE=1 \
    SITEREC_SERVE_WORKERS=2 SITEREC_SERVE_QUEUE=256 \
    SITEREC_SERVE_BATCH=16 SITEREC_SERVE_CACHE=512 \
    SITEREC_SERVE_SCORE_TIMEOUT_MS=10000 SITEREC_SERVE_READ_TIMEOUT_MS=500 \
    cargo run -q --release -p siterec-serve -- run \
    --recipe tiny:7 --ckpt target/ci_serve/ckpt --addr 127.0.0.1:47731 \
    --max-requests 3 --image target/ci_serve/emb.sremb &
CI_SERVE_PID=$!
serve_query() { run cargo run -q --release -p siterec-serve -- query \
    --addr 127.0.0.1:47731 "$@"; }
serve_query --retry 50 --healthz
serve_query --region 10 --type 3 --period morning   # scoring request 1
serve_query --topk 5 --type 3 --period noon-rush    # scoring request 2
serve_query --reload
serve_query --metrics
serve_query --region 10 --type 3                    # request 3: budget -> exit
wait "$CI_SERVE_PID"
run test -s target/ci_serve/emb.sremb
run cargo run -q -p siterec-bench --bin validate_journal -- \
    "$PWD/target/ci_serve/journal.jsonl"
# Ops-CLI smoke over the journals the runs above just wrote: summary/query
# must find the sampled serve_trace records (SITEREC_TRACE_SAMPLE=1 samples
# every request), the Chrome-trace export of the training journal must be a
# non-empty trace with one span per epoch, flame must emit collapsed stacks,
# and trend must parse every checked-in BENCH_*.json artifact (non-strict:
# the artifacts record real host numbers, not gates).
echo "ci: siterec-ops smoke (summary / query / trace / flame / trend)"
run cargo run -q -p siterec-ops -- summary "$PWD/target/ci_serve/journal.jsonl" >/dev/null
run sh -c 'cargo run -q -p siterec-ops -- query "$PWD/target/ci_serve/journal.jsonl" \
    --type serve_trace | grep -q request_id'
run cargo run -q -p siterec-ops -- trace "$PWD/target/ci_serve/train_journal.jsonl" \
    --out target/ci_serve/train_trace.json
run test -s target/ci_serve/train_trace.json
run grep -q '"traceEvents"' target/ci_serve/train_trace.json
run grep -q '"name":"train_epoch"' target/ci_serve/train_trace.json
run sh -c 'cargo run -q -p siterec-ops -- flame "$PWD/target/ci_serve/train_journal.jsonl" \
    | grep -q train'
run sh -c 'cargo run -q -p siterec-ops -- trend BENCH_*.json >/dev/null'
# Serving chaos smoke: SIGKILL the server mid-traffic, restart from the same
# checkpoint dir, and require every post-resume score to be bit-identical to
# offline inference (plus a schema-valid journal from the surviving child).
run cargo run -q --release -p siterec-serve --bin chaos_serve -- \
    --seed 7 --epochs 2 --dir target/ci_chaos_serve
# Failpoint matrix smoke: sweep seeded fault schedules (checkpoint fsync /
# section reads, journal appends, SREMB1 image I/O, reload + scorer drops)
# over the full train -> checkpoint -> export -> serve -> reload lifecycle.
# Every schedule must finish with zero panics, schema-valid journals whose
# failpoint records match the registry's firing counts, at least one
# degraded->recovered reload dance, and final scores raw-bit-identical to
# the fault-free reference at 1 and 8 scorer/tensor threads.
run cargo run -q --release -p siterec-serve --bin chaos_soak -- \
    --seeds 3 --epochs 3 --threads 1,8 --dir target/ci_chaos_soak
# Supervision chaos smoke: continuous client traffic against a supervised
# replica fleet while a seeded schedule kills, hangs (SIGSTOP), and
# rolling-restarts replicas. Every client request must eventually succeed
# with raw-bit-identical scores to an undisturbed run at 1 and 8 workers,
# every graceful drain must finish with zero abandoned jobs, and the
# supervisor + replica journals must validate with event counts matching
# the schedule. --keep leaves the journals for the ops smoke below.
run cargo run -q --release -p siterec-serve --bin chaos_supervise -- \
    --replicas 2 --events 6 --epochs 3 --threads 1,8 \
    --dir target/ci_chaos_supervise --keep
# Ops smoke over the supervision journals chaos_supervise just kept: the
# summary must render the supervisor-event and drain sections, and query
# must surface the typed supervisor_event records.
run sh -c 'cargo run -q -p siterec-ops -- summary \
    target/ci_chaos_supervise/supervisor.jsonl | grep -q "supervisor events:"'
run sh -c 'cargo run -q -p siterec-ops -- query \
    target/ci_chaos_supervise/supervisor.jsonl --type supervisor_event \
    | grep restart >/dev/null'
run sh -c 'cat target/ci_chaos_supervise/journals/*.jsonl \
    | cargo run -q -p siterec-ops -- summary /dev/stdin | grep -q "drains:"'
# Deeper seeded byte-fuzz sweep over every untrusted-byte parser (HTTP,
# SRWIRE1, SRCKPT1, SREMB1, journal) under the optimized build.
SITEREC_FUZZ_ITERS=1000 run cargo test -q --release -p siterec-serve --test fuzz_smoke
# Serving perf smoke: QPS + latency percentiles artifact, journal-validated.
echo "ci: serving perf smoke + journal validation"
SITEREC_SMOKE=1 SITEREC_JOURNAL="$PWD/target/ci_serve_bench.jsonl" \
    cargo bench -q -p siterec-bench --bench perf_serve >/dev/null
run cargo run -q -p siterec-bench --bin validate_journal -- "$PWD/target/ci_serve_bench.jsonl"
RUSTDOCFLAGS="-D warnings" run cargo doc --workspace --no-deps
echo "ci: all gates passed"
