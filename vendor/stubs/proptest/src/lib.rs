//! Offline API-compatible shim for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use — range and tuple
//! strategies, `prop::collection::vec`, `prop_map`, the `proptest!` macro and
//! `prop_assert*` — as a plain deterministic sampler: each test runs
//! `ProptestConfig::cases` random cases from a fixed seed. There is **no
//! shrinking** and no persisted failure corpus; a failing case panics with
//! the normal assert message. Good enough to exercise every property offline;
//! the real crate takes over in network builds.

use std::ops::{Range, RangeInclusive};

/// Deterministic case generator used by the [`proptest!`] macro.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Random source threaded through strategies.
    pub struct Gen(StdRng);

    impl Gen {
        /// Seeded generator (the macro derives the seed from the config).
        pub fn new(seed: u64) -> Self {
            Gen(StdRng::seed_from_u64(seed))
        }

        /// Raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies (shim of `proptest::strategy`).
pub mod strategy {
    use super::test_runner::Gen;

    /// A recipe for producing random values of `Self::Value`.
    pub trait Strategy {
        /// The produced type.
        type Value;

        /// Draw one value.
        fn generate(&self, gen: &mut Gen) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, gen: &mut Gen) -> O {
            (self.f)(self.inner.generate(gen))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _gen: &mut Gen) -> T {
            self.0.clone()
        }
    }
}

use strategy::Strategy;
use test_runner::Gen;

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (gen.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (gen.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                self.start + (gen.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                *self.start() + (gen.unit_f64() as $t) * (*self.end() - *self.start())
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                ($(self.$idx.generate(gen),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3)
);

/// Shim of the `prop` helper module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::Gen;

        /// Sizes accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
        pub struct SizeRange(std::ops::Range<usize>);

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange(n..n + 1)
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                SizeRange(r)
            }
        }

        /// Strategy for `Vec`s whose elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into().0,
            }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
                let width = (self.size.end - self.size.start).max(1) as u64;
                let n = self.size.start + (gen.next_u64() % width) as usize;
                (0..n).map(|_| self.element.generate(gen)).collect()
            }
        }
    }
}

/// Per-test configuration (shim of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything the workspace imports via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Shim of `proptest!`: expands each case into a plain `#[test]` loop over
/// `ProptestConfig::cases` deterministic samples (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut gen = $crate::test_runner::Gen::new(
                0x5eed_0000u64 ^ (stringify!($name).len() as u64)
            );
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut gen);)*
                $body
            }
        }
    )*};
}

/// Shim of `prop_assert!` (plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Shim of `prop_assert_eq!` (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Shim of `prop_assert_ne!` (plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
