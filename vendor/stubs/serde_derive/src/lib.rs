//! Offline shim for `serde_derive`: the `Serialize` / `Deserialize` derives
//! expand to nothing. The shim `serde` crate provides blanket trait impls, so
//! an empty expansion still satisfies every bound. `#[serde(...)]` helper
//! attributes are accepted and ignored.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
