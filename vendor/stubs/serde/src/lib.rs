//! Offline API-compatible shim for the `serde` crate.
//!
//! [`Serialize`] and [`Deserialize`] are marker traits with blanket impls, and
//! the re-exported derives expand to nothing, so `#[derive(Serialize,
//! Deserialize)]` and `T: Serialize` bounds all compile. Actual
//! (de)serialization is **not** implemented — the shim `serde_json` returns
//! placeholder output — so serialization-dependent tests are skipped under
//! offline builds (see `ci.sh`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Deserialization helper traits.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}
