//! Offline API-compatible shim for the `rand_distr` crate.
//!
//! Implements the subset the workspace uses — [`Poisson`], [`LogNormal`],
//! [`Normal`] over `f64` — with textbook algorithms (Knuth / normal
//! approximation for Poisson, Box–Muller for the Gaussians). Deterministic
//! under a seeded generator; streams differ from the real crate.

use rand::{RngCore, Standard};

/// A type that can produce values of `T` given a generator.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by invalid distribution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rand_distr shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; rejects u1 == 0 to keep ln finite.
    loop {
        let u1 = f64::draw(rng);
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2 = f64::draw(rng);
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Poisson distribution over `f64` counts.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Poisson with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Poisson { lambda })
        } else {
            Err(Error("Poisson lambda must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth: multiply uniforms until below e^-lambda.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= f64::draw(rng);
                if p <= l {
                    return k as f64;
                }
                k += 1;
            }
        } else {
            // Normal approximation for large rates.
            let x = self.lambda + self.lambda.sqrt() * standard_normal(rng);
            x.round().max(0.0)
        }
    }
}

/// Gaussian distribution.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Normal with the given mean and standard deviation (`std_dev >= 0`).
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(Error("Normal requires finite mean and std_dev >= 0"))
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(Normal(mu, sigma))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Log-normal whose logarithm has the given mean and standard deviation.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = StdRng::seed_from_u64(5);
        for &lambda in &[0.5, 3.0, 12.0, 80.0] {
            let d = Poisson::new(lambda).unwrap();
            let n = 4000;
            let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.15,
                "lambda {lambda} mean {mean}"
            );
        }
    }

    #[test]
    fn lognormal_positive() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = LogNormal::new(0.0, 0.35).unwrap();
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }
}
