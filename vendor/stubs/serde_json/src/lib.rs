//! Offline API-compatible shim for `serde_json`.
//!
//! Type-checks everywhere the workspace uses `serde_json`, but does **not**
//! implement real JSON: [`to_string`] returns a placeholder and [`from_str`]
//! always errors. Serialization-dependent tests are therefore skipped under
//! offline builds (see `ci.sh` and the notes in `tests/serde_roundtrip.rs`).

use std::fmt;

/// Error type mirroring `serde_json::Error`.
#[derive(Debug)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json offline shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Placeholder serialization (the shim cannot produce real JSON).
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok("{\"__offline_stub__\":true}".to_string())
}

/// Placeholder pretty serialization.
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    to_string(value)
}

/// Always errors: the shim cannot deserialize.
pub fn from_str<T>(_s: &str) -> Result<T> {
    Err(Error(
        "deserialization requires the real serde_json (network build)",
    ))
}
