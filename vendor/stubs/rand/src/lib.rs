//! Offline API-compatible shim for the `rand` crate.
//!
//! This crate exists so the workspace can build and run in environments with
//! no network access and no crates.io cache (see `vendor/stubs/README.md`).
//! It implements the *subset* of the rand 0.8 API the workspace uses, backed
//! by a SplitMix64 generator. Streams are deterministic under a seed but do
//! **not** match the real `StdRng` (ChaCha12) streams, so numeric results
//! differ between shim and real builds while every determinism property
//! (same seed ⇒ same output) is preserved.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let x = (rng.next_u64() as u128) % width;
                (self.start as i128 + x as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let x = (rng.next_u64() as u128) % width;
                (lo as i128 + x as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let u = <$t as Standard>::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing generator interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw within a range.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }

    /// Draw from a distribution (mirrors `Rng::sample`).
    fn sample<T, D: crate::distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Distribution trait (the shim's `rand::distributions`).
pub mod distributions {
    use super::RngCore;

    /// A type that can produce values of `T` given a generator.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    ///
    /// Deterministic under a seed; the stream differs from the real ChaCha12
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Avoid the all-zeros fixed point of raw xor-shift mixes.
                state: seed ^ 0x1234_5678_9ABC_DEF0,
            }
        }
    }
}

/// Slice extension methods, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::RngCore;

    /// Shuffle/choose over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick a reference, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(0..10);
            assert!(x < 10);
            let y: f32 = r.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn uniform_f64_mean_near_half() {
        let mut r = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
