//! Offline API-compatible shim for the `criterion` crate.
//!
//! Implements the subset `benches/perf_micro.rs` uses — `Criterion`,
//! `benchmark_group`, `measurement_time`/`sample_size`, `bench_function`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!` — as a simple
//! wall-clock timer: each benchmark is warmed up once, run `sample_size`
//! times, and the mean/min/max per-iteration times are printed. No
//! statistical analysis, outlier detection, or HTML reports. The real
//! crate takes over in network builds.

use std::time::{Duration, Instant};

/// Identity hint mirroring `criterion::black_box` (defers to `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Mirrors `Criterion::bench_function` (ungrouped benchmark).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        };
        group.bench_function(name, f);
        self
    }

    /// Mirrors `Criterion::final_summary` (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup {
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Cap the total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Run one benchmark: warm-up iteration, then up to `sample_size`
    /// timed samples bounded by `measurement_time`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        // Warm-up (uncounted).
        f(&mut bencher);
        bencher.elapsed = Duration::ZERO;
        bencher.iters = 0;

        let budget = Instant::now();
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let before = (bencher.elapsed, bencher.iters);
            f(&mut bencher);
            let dt = bencher.elapsed - before.0;
            let di = (bencher.iters - before.1).max(1);
            samples.push(dt.as_secs_f64() / di as f64);
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  {name}: mean {:.3} ms  [min {:.3} ms, max {:.3} ms]  ({} samples)",
            mean * 1e3,
            min * 1e3,
            max * 1e3,
            samples.len()
        );
        self
    }

    /// End the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time one call of `routine` (the shim runs exactly one iteration
    /// per sample instead of Criterion's adaptive batching).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Shim of `criterion_group!`: bundles benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Shim of `criterion_main!`: generates `main` calling each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
